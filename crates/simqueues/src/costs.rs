//! Local-computation cycle charges.
//!
//! Between shared-memory transactions, simulated code runs for free; these
//! constants are the explicit `work()` charges algorithms make so that pure
//! local computation (loop control, arithmetic, call overhead) is coarsely
//! accounted for, as Proteus would have done per instruction.

/// Fixed overhead charged at the start of every queue operation
/// (call/setup instructions).
pub const OP_SETUP: u64 = 6;

/// Charge per iteration of a local scan loop (index arithmetic + branch).
pub const LOOP_ITER: u64 = 2;

/// Charge for computing a random number locally.
pub const RNG_DRAW: u64 = 4;

/// Charge for a tree-level step (child index computation).
pub const TREE_STEP: u64 = 2;

/// Charge for heap sift bookkeeping per level.
pub const SIFT_STEP: u64 = 3;

/// Cycles between re-reads of our own record while waiting to be collided
/// with inside a funnel layer (models spinning on a cached copy with
/// periodic re-checks).
pub const FUNNEL_SPIN_STEP: u64 = 24;
