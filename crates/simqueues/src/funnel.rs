//! Combining-funnel counter over simulated memory — the paper's Figure 10,
//! including collision layers, homogeneous same-size trees, elimination of
//! reversing operations, local adaption, and the bounds check folded into
//! the funnel (rather than paying two traversals à la Gottlieb et al.).

use funnelpq_sim::{Addr, Machine, ProcCtx, Word};

use crate::costs;
use crate::error::SimPqError;

/// Tuning parameters for simulated combining funnels (counters and stacks).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SimFunnelConfig {
    /// Width (in slots) of each combining layer, outermost first.
    pub widths: Vec<usize>,
    /// Collision attempts per layer before trying the central object.
    pub attempts: u32,
    /// Number of capture-checks (spaced [`costs::FUNNEL_SPIN_STEP`] cycles
    /// apart) spent waiting after each attempt, per layer.
    pub spin_checks: Vec<u32>,
    /// Whether processors adapt the fraction of the layer width they use to
    /// the collision rate they observe.
    pub adaption: bool,
}

impl SimFunnelConfig {
    /// Parameters scaled to `procs` processors sharing the funnel — the
    /// shape chosen by the preliminary tuning run (`bench/funnel_tuning`,
    /// mirroring the paper's high-concurrency calibration, scored across
    /// several workloads): two layers at widths P/4 and P/16, two
    /// collision attempts per layer, short capture-wait spins. Width and
    /// traversal-depth adaption then specialize each funnel to the load it
    /// actually sees.
    pub fn for_procs(procs: usize) -> Self {
        let levels = if procs <= 8 { 1 } else { 2 };
        let widths = (0..levels).map(|d| (procs >> (2 + 2 * d)).max(1)).collect();
        let spin_checks = (0..levels).map(|d| 3 + 2 * d as u32).collect();
        SimFunnelConfig {
            widths,
            attempts: 2,
            spin_checks,
            adaption: true,
        }
    }

    /// Checks the configuration for internal consistency, reporting what
    /// is wrong instead of panicking. Used by fallible builders
    /// ([`crate::queues::SimPq::try_build`]); the panicking
    /// [`validate`](Self::validate) delegates here.
    pub fn check(&self) -> Result<(), SimPqError> {
        if self.widths.len() != self.spin_checks.len() {
            return Err(SimPqError::BadConfig {
                what: "SimFunnelConfig",
                detail: format!(
                    "widths has {} layers but spin_checks has {}",
                    self.widths.len(),
                    self.spin_checks.len()
                ),
            });
        }
        if let Some(d) = self.widths.iter().position(|&w| w == 0) {
            return Err(SimPqError::BadConfig {
                what: "SimFunnelConfig",
                detail: format!("layer {d} has width 0"),
            });
        }
        if self.attempts == 0 {
            return Err(SimPqError::BadConfig {
                what: "SimFunnelConfig",
                detail: "attempts must be at least 1".into(),
            });
        }
        Ok(())
    }

    pub(crate) fn validate(&self) {
        if let Err(e) = self.check() {
            panic!("{e}");
        }
    }
}

/// Operation mode of a funnel counter.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CounterMode {
    /// Classic combining fetch-and-add: any two colliding operations
    /// combine (deltas commute); no elimination, no bounds.
    FetchAdd,
    /// The paper's bounded counter family (§3.3 provides bounded
    /// fetch-and-decrement "and an analogous bounded-fetch-and-increment"):
    /// trees are homogeneous (one operation kind), reversing trees
    /// eliminate, decrements never take the value below `lo`, increments
    /// never above `hi`.
    Bounded {
        /// Lower bound on the counter value (`None` = unbounded below).
        lo: Option<i64>,
        /// Upper bound on the counter value (`None` = unbounded above).
        hi: Option<i64>,
    },
}

impl CounterMode {
    /// The bounded mode the priority-queue trees use: decrements saturate
    /// at zero, increments are unbounded.
    pub const BOUNDED_AT_ZERO: CounterMode = CounterMode::Bounded {
        lo: Some(0),
        hi: None,
    };

    fn clamp(&self, v: i64) -> i64 {
        match *self {
            CounterMode::FetchAdd => v,
            CounterMode::Bounded { lo, hi } => {
                let mut v = v;
                if let Some(lo) = lo {
                    v = v.max(lo);
                }
                if let Some(hi) = hi {
                    v = v.min(hi);
                }
                v
            }
        }
    }
}

const LOC_FROZEN: Word = u64::MAX;
const RES_NONE: Word = 0;
const TAG_COUNT: Word = 1;
const TAG_ELIM: Word = 2;

fn pack(tag: Word, v: i64) -> Word {
    ((v as u64) << 2) | tag
}

fn unpack(x: Word) -> (Word, i64) {
    (x & 0b11, (x as i64) >> 2)
}

/// A combining-funnel shared counter in simulated memory.
///
/// Layout: one central word, one slot word per layer position, and one
/// record (location, sum, result) per processor, records line-padded.
#[derive(Debug, Clone)]
pub struct SimFunnelCounter {
    cfg: std::rc::Rc<SimFunnelConfig>,
    mode: CounterMode,
    central: Addr,
    layers: std::rc::Rc<Vec<(Addr, usize)>>,
    records: Addr,
    rec_stride: usize,
    /// Per-processor adaption factor in 1/256ths (processor-local state:
    /// the paper keeps `Adaption_factor` in the processor's own record, so
    /// it costs no shared-memory traffic).
    frac: std::rc::Rc<std::cell::RefCell<Vec<u64>>>,
    /// Per-processor depth preference: how many combining layers to
    /// traverse before applying to the central value (the paper's "decide
    /// locally how many combining layers to traverse" adaption; 0 = go
    /// straight to the central compare-and-swap).
    depth: std::rc::Rc<std::cell::RefCell<Vec<usize>>>,
}

impl SimFunnelCounter {
    /// Allocates a funnel counter (initial value zero) for `procs`
    /// processors.
    pub fn build(m: &mut Machine, procs: usize, mode: CounterMode, cfg: SimFunnelConfig) -> Self {
        cfg.validate();
        let central = m.alloc(1);
        let layers: Vec<(Addr, usize)> = cfg.widths.iter().map(|&w| (m.alloc(w), w)).collect();
        let rec_stride = m.line_words().max(4);
        let records = m.alloc(procs * rec_stride);
        let levels = cfg.widths.len();
        m.label(central, 1, "funnel counter central");
        for &(base, w) in &layers {
            m.label(base, w, "funnel layers");
        }
        m.label(records, procs * rec_stride, "funnel records");
        SimFunnelCounter {
            cfg: std::rc::Rc::new(cfg),
            mode,
            central,
            layers: std::rc::Rc::new(layers),
            records,
            rec_stride,
            frac: std::rc::Rc::new(std::cell::RefCell::new(vec![256; procs])),
            depth: std::rc::Rc::new(std::cell::RefCell::new(vec![levels; procs])),
        }
    }

    fn loc_of(&self, pid: usize) -> Addr {
        assert!(
            pid < self.frac.borrow().len(),
            "processor {pid} used a funnel built for fewer processors"
        );
        self.records + pid * self.rec_stride
    }
    fn sum_of(&self, pid: usize) -> Addr {
        self.records + pid * self.rec_stride + 1
    }
    fn res_of(&self, pid: usize) -> Addr {
        self.records + pid * self.rec_stride + 2
    }

    /// Fetch-and-increment through the funnel.
    pub async fn fetch_inc(&self, ctx: &ProcCtx) -> i64 {
        self.operate(ctx, 1).await
    }

    /// Fetch-and-decrement through the funnel (bounded below by zero in
    /// the bounded modes).
    pub async fn fetch_dec(&self, ctx: &ProcCtx) -> i64 {
        self.operate(ctx, -1).await
    }

    fn clamp_ret(&self, v: i64) -> i64 {
        self.mode.clamp(v)
    }

    async fn operate(&self, ctx: &ProcCtx, delta: i64) -> i64 {
        let _span = ctx.span("funnel-traverse");
        ctx.work(costs::OP_SETUP).await;
        let pid = ctx.pid();
        let mut sum = delta;
        let mut children: Vec<(usize, i64)> = Vec::new();
        let mut d: usize = 0;
        let levels = self.layers.len();
        let width_frac: u64 = self.frac.borrow()[pid];
        let mut max_d: usize = self.depth.borrow()[pid].min(levels);
        let mut attempts_made = 0u32;
        let mut collisions_won = 0u32;
        let mut central_fails = 0u32;
        let mut was_captured = false;

        ctx.write(self.sum_of(pid), sum as u64).await;
        ctx.write(self.res_of(pid), RES_NONE).await;
        ctx.write(self.loc_of(pid), (d + 1) as u64).await;

        let (tag, base) = 'mainloop: loop {
            let mut n = 0;
            'attempts: while n < self.cfg.attempts && d < max_d {
                n += 1;
                attempts_made += 1;
                let (layer_base, layer_w) = self.layers[d];
                let wid = if self.cfg.adaption {
                    (((layer_w as u64) * width_frac / 256).max(1) as usize).min(layer_w)
                } else {
                    layer_w
                };
                ctx.work(costs::RNG_DRAW).await;
                let slot = layer_base + ctx.random_below(wid as u64) as usize;
                let q = ctx.swap(slot, (pid + 1) as u64).await;
                if q != 0 && (q - 1) as usize != pid {
                    let q = (q - 1) as usize;
                    // Freeze ourselves.
                    let old = ctx.cas(self.loc_of(pid), (d + 1) as u64, LOC_FROZEN).await;
                    if old != (d + 1) as u64 {
                        {
                            was_captured = true;
                            break 'mainloop self.await_result(ctx, pid).await;
                        }
                    }
                    // Try to capture q at our layer.
                    let qold = ctx.cas(self.loc_of(q), (d + 1) as u64, LOC_FROZEN).await;
                    if qold == (d + 1) as u64 {
                        collisions_won += 1;
                        // Marker for tracers and fault plans: this
                        // processor just won a collision and now combines
                        // (or eliminates) on behalf of the captured peer.
                        ctx.span("funnel-combine").end();
                        let qsum = ctx.read(self.sum_of(q)).await as i64;
                        let reversing = self.mode != CounterMode::FetchAdd && qsum == -sum;
                        if reversing {
                            // Elimination: short-cut read of the central
                            // value, no update.
                            let val = ctx.read(self.central).await as i64;
                            let mut dv = val;
                            if let CounterMode::Bounded { lo, hi } = self.mode {
                                if lo == Some(dv) {
                                    dv += 1; // the paper's BOT adjustment
                                }
                                if let Some(hi) = hi {
                                    dv = dv.min(hi);
                                }
                            }
                            let (my_v, q_v) = if sum < 0 { (dv, dv - 1) } else { (dv - 1, dv) };
                            ctx.write(self.res_of(q), pack(TAG_ELIM, q_v)).await;
                            break 'mainloop (TAG_ELIM, my_v);
                        }
                        let compatible = match self.mode {
                            CounterMode::FetchAdd => true,
                            CounterMode::Bounded { .. } => qsum.signum() == sum.signum(),
                        };
                        debug_assert!(
                            compatible,
                            "layer discipline should make same-layer trees compatible"
                        );
                        // Combine: q's tree becomes our child.
                        sum += qsum;
                        ctx.write(self.sum_of(pid), sum as u64).await;
                        children.push((q, qsum));
                        d += 1;
                        ctx.write(self.loc_of(pid), (d + 1) as u64).await;
                        n = 0;
                        continue 'attempts;
                    }
                    // Capture failed: republish ourselves at this layer.
                    ctx.write(self.loc_of(pid), (d + 1) as u64).await;
                }
                // Delay, periodically checking whether we were captured.
                // Delay times adapt to load like widths do: a funnel whose
                // collisions are succeeding (width_frac high) is worth
                // waiting in; a quiet one is not.
                let checks = if self.cfg.adaption {
                    ((self.cfg.spin_checks[d] as usize * max_d) / levels).max(1) as u32
                } else {
                    self.cfg.spin_checks[d]
                };
                for _ in 0..checks {
                    ctx.work(costs::FUNNEL_SPIN_STEP).await;
                    let v = ctx.read(self.loc_of(pid)).await;
                    if v != (d + 1) as u64 {
                        {
                            was_captured = true;
                            break 'mainloop self.await_result(ctx, pid).await;
                        }
                    }
                }
            }
            // Exit the funnel: apply the whole tree to the central counter.
            let old = ctx.cas(self.loc_of(pid), (d + 1) as u64, LOC_FROZEN).await;
            if old != (d + 1) as u64 {
                {
                    was_captured = true;
                    break 'mainloop self.await_result(ctx, pid).await;
                }
            }
            let val = ctx.read(self.central).await as i64;
            let new = self.mode.clamp(val + sum);
            let got = ctx.cas(self.central, val as u64, new as u64).await;
            if got == val as u64 {
                break 'mainloop (TAG_COUNT, val);
            }
            // Central contention: allow deeper combining on the retry.
            central_fails += 1;
            max_d = (max_d + 1).min(levels);
            ctx.write(self.loc_of(pid), (d + 1) as u64).await;
        };

        // Local adaption: grow the slice of the layer we use when collisions
        // are frequent, shrink it when they are rare.
        if self.cfg.adaption {
            if attempts_made > 0 {
                let mut frac = self.frac.borrow_mut();
                if collisions_won * 2 >= attempts_made {
                    frac[pid] = (frac[pid] * 2).min(256);
                } else if collisions_won == 0 {
                    frac[pid] = (frac[pid] / 2).max(16);
                }
            }
            // Depth adaption: combining success, being combined with, or a
            // contended central value all argue for traversing layers; a
            // clean solo pass argues for going straight to the central CAS.
            let mut depth = self.depth.borrow_mut();
            let engaged = collisions_won > 0 || was_captured || central_fails > 0;
            if engaged {
                depth[pid] = (depth[pid] + 1).min(levels);
            } else {
                depth[pid] = depth[pid].saturating_sub(1);
            }
        }

        // Distribute results to captured subtrees.
        let ret = match tag {
            TAG_ELIM => {
                for &(child, _) in &children {
                    ctx.write(self.res_of(child), pack(TAG_ELIM, base)).await;
                }
                self.clamp_ret(base)
            }
            TAG_COUNT => {
                let mut total = delta;
                for &(child, csum) in &children {
                    ctx.write(self.res_of(child), pack(TAG_COUNT, base + total))
                        .await;
                    total += csum;
                }
                self.clamp_ret(base)
            }
            _ => unreachable!("funnel result tag"),
        };
        ret
    }

    async fn await_result(&self, ctx: &ProcCtx, pid: usize) -> (Word, i64) {
        let r = ctx.wait_until(self.res_of(pid), |v| v != RES_NONE).await;
        unpack(r)
    }

    /// Central value (test/assertion helper; zero simulated cost).
    pub fn peek_value(&self, m: &Machine) -> i64 {
        m.peek(self.central) as i64
    }

    /// Sets the central value before a run (setup helper; zero simulated
    /// cost).
    pub fn poke_set(&self, m: &mut Machine, v: i64) {
        m.poke(self.central, v as u64);
    }

    /// Current traversal-depth preference of processor `pid` (diagnostic
    /// view of the adaption state; zero simulated cost).
    pub fn depth_preference(&self, pid: usize) -> usize {
        self.depth.borrow()[pid]
    }

    /// Re-labels this counter's central word for hot-spot reports.
    pub fn label(&self, m: &mut Machine, name: &str) {
        m.label(self.central, 1, name);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use funnelpq_sim::MachineConfig;
    use std::cell::RefCell;
    use std::rc::Rc;

    fn cfg(p: usize) -> SimFunnelConfig {
        SimFunnelConfig::for_procs(p)
    }

    #[test]
    fn sequential_semantics() {
        let mut m = Machine::new(MachineConfig::test_tiny(), 0);
        let c = SimFunnelCounter::build(&mut m, 1, CounterMode::BOUNDED_AT_ZERO, cfg(1));
        let ctx = m.ctx();
        let c2 = c.clone();
        m.spawn(async move {
            let c = c2;
            assert_eq!(c.fetch_inc(&ctx).await, 0);
            assert_eq!(c.fetch_inc(&ctx).await, 1);
            assert_eq!(c.fetch_dec(&ctx).await, 2);
            assert_eq!(c.fetch_dec(&ctx).await, 1);
            assert_eq!(c.fetch_dec(&ctx).await, 0); // saturated
        });
        assert!(m.run().is_quiescent());
        assert_eq!(c.peek_value(&m), 0);
    }

    #[test]
    fn concurrent_increments_exact() {
        const P: usize = 32;
        const N: usize = 20;
        let mut m = Machine::new(MachineConfig::alewife_like(), 11);
        let c = SimFunnelCounter::build(&mut m, P, CounterMode::BOUNDED_AT_ZERO, cfg(P));
        for _ in 0..P {
            let ctx = m.ctx();
            let c = c.clone();
            m.spawn(async move {
                for _ in 0..N {
                    c.fetch_inc(&ctx).await;
                }
            });
        }
        assert!(m.run().is_quiescent());
        assert_eq!(c.peek_value(&m), (P * N) as i64);
    }

    #[test]
    fn concurrent_mixed_balances() {
        const P: usize = 16;
        const N: usize = 30;
        let mut m = Machine::new(MachineConfig::alewife_like(), 5);
        let c = SimFunnelCounter::build(&mut m, P, CounterMode::FetchAdd, cfg(P));
        // Seed a large initial value so unbounded arithmetic is exact.
        m.poke(c.central, 1_000);
        for p in 0..P {
            let ctx = m.ctx();
            let c = c.clone();
            m.spawn(async move {
                for _ in 0..N {
                    if p % 2 == 0 {
                        c.fetch_inc(&ctx).await;
                    } else {
                        c.fetch_dec(&ctx).await;
                    }
                }
            });
        }
        assert!(m.run().is_quiescent());
        assert_eq!(c.peek_value(&m), 1_000);
    }

    #[test]
    fn bounded_mixed_never_negative_and_conserves() {
        const P: usize = 24;
        const N: usize = 25;
        let mut m = Machine::new(MachineConfig::alewife_like(), 7);
        let c = SimFunnelCounter::build(&mut m, P, CounterMode::BOUNDED_AT_ZERO, cfg(P));
        let mins = Rc::new(RefCell::new(Vec::new()));
        for p in 0..P {
            let ctx = m.ctx();
            let c = c.clone();
            let mins = Rc::clone(&mins);
            m.spawn(async move {
                for i in 0..N {
                    let v = if (p + i) % 3 != 0 {
                        c.fetch_inc(&ctx).await
                    } else {
                        c.fetch_dec(&ctx).await
                    };
                    mins.borrow_mut().push(v);
                }
            });
        }
        assert!(m.run().is_quiescent());
        assert!(c.peek_value(&m) >= 0);
        assert!(mins.borrow().iter().all(|&v| v >= 0));
    }

    #[test]
    fn deterministic() {
        fn run(seed: u64) -> (i64, u64) {
            let mut m = Machine::new(MachineConfig::alewife_like(), seed);
            let c = SimFunnelCounter::build(&mut m, 8, CounterMode::BOUNDED_AT_ZERO, cfg(8));
            for p in 0..8 {
                let ctx = m.ctx();
                let c = c.clone();
                m.spawn(async move {
                    for i in 0..20 {
                        if (p + i) % 2 == 0 {
                            c.fetch_inc(&ctx).await;
                        } else {
                            c.fetch_dec(&ctx).await;
                        }
                    }
                });
            }
            assert!(m.run().is_quiescent());
            (c.peek_value(&m), m.now())
        }
        assert_eq!(run(3), run(3));
    }
}
