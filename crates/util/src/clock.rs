//! Process-wide monotonic nanosecond clock.
//!
//! Trace records and telemetry windows need timestamps that are cheap,
//! monotonic, and comparable *across threads* — `Instant` alone is
//! opaque (no numeric value), so everything here is measured against one
//! lazily-pinned process epoch. The first call pins the epoch; every
//! later call is a single `Instant::now()` plus a subtraction.

use std::sync::OnceLock;
use std::time::Instant;

static EPOCH: OnceLock<Instant> = OnceLock::new();

/// Nanoseconds since the process trace epoch (pinned on first use).
/// Monotonic and shared by every thread, so values from different
/// threads order correctly on one timeline.
pub fn mono_ns() -> u64 {
    EPOCH.get_or_init(Instant::now).elapsed().as_nanos() as u64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn monotonic_and_cross_thread_comparable() {
        let a = mono_ns();
        let b = mono_ns();
        assert!(b >= a);
        let t = std::thread::spawn(mono_ns).join().unwrap();
        let c = mono_ns();
        assert!(t <= c + 1_000_000_000, "thread reading far in the future");
        assert!(c >= a);
    }
}
