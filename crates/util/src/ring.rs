//! Lock-free seqlock ring buffer for fixed-width trace records.
//!
//! Writers never block and never wait for readers: a global cursor hands
//! out positions (`fetch_add`), each position maps onto a power-of-two
//! slot array, and a per-slot sequence word lets a concurrent reader
//! detect records that are mid-write or already overwritten and drop
//! them instead of observing a torn mix. The newest `capacity` records
//! win; history beyond that is overwritten — exactly the flight-recorder
//! semantics a low-overhead tracer wants.
//!
//! Slot protocol, for position `pos` on slot `pos % capacity`:
//!
//! 1. claim: CAS the slot's sequence from its current quiescent (even,
//!    older) value to the odd in-progress value `2·pos+1`. An odd value,
//!    a newer even value, or a lost CAS means another writer owns or has
//!    lapped the slot — the record is dropped (counted) rather than
//!    raced, so at most one writer is ever inside a slot;
//! 2. `fence(Release)`, then the record words as relaxed atomic stores;
//! 3. publish: store `2·pos+2` with `Release`.
//!
//! A reader expecting `pos` loads the sequence with `Acquire` (must equal
//! `2·pos+2`), reads the words relaxed, issues `fence(Acquire)`, and
//! re-reads the sequence: any concurrent writer's claim lands between the
//! fences (release/acquire fence synchronization through the data words),
//! so a torn read always shows a changed sequence and is rejected.

use std::sync::atomic::{fence, AtomicU64, Ordering};

use crate::CachePadded;

struct Slot<const N: usize> {
    seq: AtomicU64,
    words: [AtomicU64; N],
}

/// Multi-writer, snapshot-reader ring of `[u64; N]` records. See the
/// module docs for the slot protocol.
pub struct SeqRing<const N: usize> {
    slots: Box<[Slot<N>]>,
    mask: u64,
    /// Total positions ever claimed (monotonic record id).
    head: CachePadded<AtomicU64>,
    /// Records abandoned because a stalled writer still owned the slot.
    dropped: CachePadded<AtomicU64>,
}

impl<const N: usize> SeqRing<N> {
    /// Ring holding the most recent `capacity` records (rounded up to a
    /// power of two, minimum 2).
    pub fn new(capacity: usize) -> Self {
        let cap = capacity.next_power_of_two().max(2);
        let slots = (0..cap)
            .map(|_| Slot {
                seq: AtomicU64::new(0),
                words: std::array::from_fn(|_| AtomicU64::new(0)),
            })
            .collect();
        Self {
            slots,
            mask: cap as u64 - 1,
            head: CachePadded::new(AtomicU64::new(0)),
            dropped: CachePadded::new(AtomicU64::new(0)),
        }
    }

    /// Slot count (power of two).
    pub fn capacity(&self) -> usize {
        self.slots.len()
    }

    /// Total records ever claimed (including later-overwritten ones).
    pub fn pushed(&self) -> u64 {
        self.head.load(Ordering::Relaxed)
    }

    /// Records dropped at the claim CAS (a previous-lap writer stalled
    /// inside the slot). Zero in any single-writer-per-ring deployment.
    pub fn dropped(&self) -> u64 {
        self.dropped.load(Ordering::Relaxed)
    }

    /// Appends a record; never blocks. Overwrites the record `capacity`
    /// positions back; drops this record only if that old slot is still
    /// owned by a stalled writer.
    pub fn push(&self, record: [u64; N]) {
        let pos = self.head.fetch_add(1, Ordering::Relaxed);
        let slot = &self.slots[(pos & self.mask) as usize];
        let claim = 2 * pos + 1;
        // Claim only a quiescent slot holding something older than this
        // record: an odd value is a writer mid-record, a newer even value
        // is a lapping writer that already published past this position.
        // Either way the colliding record is dropped, never raced.
        let cur = slot.seq.load(Ordering::Relaxed);
        if cur % 2 == 1
            || cur > claim
            || slot
                .seq
                .compare_exchange(cur, claim, Ordering::Relaxed, Ordering::Relaxed)
                .is_err()
        {
            self.dropped.fetch_add(1, Ordering::Relaxed);
            return;
        }
        fence(Ordering::Release);
        for (w, &v) in slot.words.iter().zip(record.iter()) {
            w.store(v, Ordering::Relaxed);
        }
        slot.seq.store(2 * pos + 2, Ordering::Release);
    }

    /// Snapshots the currently-readable window, oldest first. Records
    /// mid-write or overwritten during the scan are skipped; the result
    /// is a consistent sample, not an exact log.
    pub fn drain(&self) -> Vec<[u64; N]> {
        let head = self.head.load(Ordering::Acquire);
        let cap = self.slots.len() as u64;
        let start = head.saturating_sub(cap);
        let mut out = Vec::with_capacity((head - start) as usize);
        for pos in start..head {
            let slot = &self.slots[(pos & self.mask) as usize];
            let want = 2 * pos + 2;
            if slot.seq.load(Ordering::Acquire) != want {
                continue;
            }
            let mut rec = [0u64; N];
            for (v, w) in rec.iter_mut().zip(slot.words.iter()) {
                *v = w.load(Ordering::Relaxed);
            }
            fence(Ordering::Acquire);
            if slot.seq.load(Ordering::Relaxed) == want {
                out.push(rec);
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn keeps_newest_records_in_order() {
        let ring: SeqRing<2> = SeqRing::new(4);
        for i in 0..10u64 {
            ring.push([i, i * 100]);
        }
        let recs = ring.drain();
        assert_eq!(recs, vec![[6, 600], [7, 700], [8, 800], [9, 900]]);
        assert_eq!(ring.pushed(), 10);
        assert_eq!(ring.dropped(), 0);
    }

    #[test]
    fn partial_fill_returns_everything() {
        let ring: SeqRing<4> = SeqRing::new(8);
        ring.push([1, 2, 3, 4]);
        ring.push([5, 6, 7, 8]);
        assert_eq!(ring.drain(), vec![[1, 2, 3, 4], [5, 6, 7, 8]]);
        assert!(SeqRing::<4>::new(0).drain().is_empty());
    }

    #[test]
    fn concurrent_writers_never_tear() {
        // Each record carries (writer_tag | i, writer_tag | i): a torn
        // record would mix tags or indices across its two words.
        const WRITERS: u64 = 4;
        const PER: u64 = 20_000;
        let ring: Arc<SeqRing<2>> = Arc::new(SeqRing::new(256));
        let stop = Arc::new(std::sync::atomic::AtomicBool::new(false));
        let reader = {
            let ring = Arc::clone(&ring);
            let stop = Arc::clone(&stop);
            std::thread::spawn(move || {
                let mut seen = 0u64;
                while !stop.load(Ordering::Acquire) {
                    for rec in ring.drain() {
                        assert_eq!(rec[0], rec[1], "torn record {rec:?}");
                        seen += 1;
                    }
                }
                seen
            })
        };
        let writers: Vec<_> = (0..WRITERS)
            .map(|w| {
                let ring = Arc::clone(&ring);
                std::thread::spawn(move || {
                    for i in 0..PER {
                        let v = (w << 56) | i;
                        ring.push([v, v]);
                    }
                })
            })
            .collect();
        for h in writers {
            h.join().unwrap();
        }
        stop.store(true, Ordering::Release);
        let seen = reader.join().unwrap();
        assert_eq!(ring.pushed(), WRITERS * PER);
        // The final drain is quiescent: exactly the last `capacity`
        // positions, minus any claim-dropped slots.
        let recs = ring.drain();
        assert!(recs.len() as u64 >= ring.capacity() as u64 - ring.dropped());
        for rec in &recs {
            assert_eq!(rec[0], rec[1]);
        }
        // The racing reader may lose the scheduling lottery and observe
        // nothing before the writers finish; the quiescent drain then
        // holds the resident window, so something was always checked.
        assert!(seen + recs.len() as u64 > 0, "no record was ever observed");
    }
}
