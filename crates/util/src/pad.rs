//! Cache-line padding, replacing `crossbeam_utils::CachePadded` so the
//! workspace carries no external dependencies.

use std::fmt;
use std::ops::{Deref, DerefMut};

/// Pads and aligns a value to 128 bytes, keeping it on its own cache line
/// (two lines on the common 64-byte-line x86 machines, matching the
/// spatial-prefetcher-aware alignment crossbeam uses there).
///
/// # Examples
///
/// ```
/// use funnelpq_util::CachePadded;
/// use std::sync::atomic::AtomicU64;
/// let c = CachePadded::new(AtomicU64::new(0));
/// assert_eq!(std::mem::align_of_val(&c), 128);
/// ```
#[derive(Default, Clone, Copy, PartialEq, Eq)]
#[repr(align(128))]
pub struct CachePadded<T> {
    value: T,
}

impl<T> CachePadded<T> {
    /// Wraps `value` in padding.
    pub const fn new(value: T) -> Self {
        CachePadded { value }
    }

    /// Unwraps the inner value.
    pub fn into_inner(self) -> T {
        self.value
    }
}

impl<T> Deref for CachePadded<T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.value
    }
}

impl<T> DerefMut for CachePadded<T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.value
    }
}

impl<T: fmt::Debug> fmt::Debug for CachePadded<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_tuple("CachePadded").field(&self.value).finish()
    }
}

impl<T> From<T> for CachePadded<T> {
    fn from(value: T) -> Self {
        CachePadded::new(value)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn aligned_and_transparent() {
        let c = CachePadded::new(7u32);
        assert_eq!(*c, 7);
        assert_eq!(std::mem::align_of_val(&c), 128);
        assert!(std::mem::size_of_val(&c) >= 128);
        let mut c = c;
        *c = 9;
        assert_eq!(c.into_inner(), 9);
    }
}
