//! Running latency/quantity accumulator with a log₂ histogram.
//!
//! Grown out of the simulator's stats layer and promoted here so that
//! every layer — simulator experiments, native benches, and the
//! `funnelpq-server` serving layer — accounts latencies into the same
//! 32-bucket log₂ shape (`funnelpq::obs`'s histograms use it too).

/// Number of log₂ histogram buckets in an [`Acc`]: bucket 0 holds the value
/// 0, bucket `i ≥ 1` holds values in `[2^(i-1), 2^i)`, and the last bucket
/// absorbs everything larger.
pub const ACC_BUCKETS: usize = 32;

/// Log₂ bucket index for one sample.
fn bucket_of(v: u64) -> usize {
    ((u64::BITS - v.leading_zeros()) as usize).min(ACC_BUCKETS - 1)
}

/// Running statistics for one named series of latency samples: moments,
/// extrema, and a 32-bucket log₂ histogram for approximate quantiles.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Acc {
    count: u64,
    sum: u64,
    sum_sq: u128,
    min: u64,
    max: u64,
    buckets: [u64; ACC_BUCKETS],
}

impl Acc {
    /// Creates an empty accumulator.
    pub fn new() -> Self {
        Acc::default()
    }

    /// Adds one sample.
    pub fn record(&mut self, v: u64) {
        if self.count == 0 || v < self.min {
            self.min = v;
        }
        if v > self.max {
            self.max = v;
        }
        self.count += 1;
        self.sum += v;
        self.sum_sq += (v as u128) * (v as u128);
        self.buckets[bucket_of(v)] += 1;
    }

    /// Number of samples recorded.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of all samples.
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Smallest sample, or 0 if empty.
    pub fn min(&self) -> u64 {
        self.min
    }

    /// Largest sample, or 0 if empty.
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Arithmetic mean, or 0.0 if empty.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Population standard deviation, or 0.0 if empty.
    pub fn std_dev(&self) -> f64 {
        if self.count == 0 {
            return 0.0;
        }
        let mean = self.mean();
        let var = self.sum_sq as f64 / self.count as f64 - mean * mean;
        var.max(0.0).sqrt()
    }

    /// The log₂ histogram bucket counts (see [`ACC_BUCKETS`]).
    pub fn bucket_counts(&self) -> &[u64; ACC_BUCKETS] {
        &self.buckets
    }

    /// Approximate `q`-quantile (`0.0 < q <= 1.0`) as the upper edge of the
    /// log₂ bucket containing the rank-`⌈q·n⌉` sample: exact to within a
    /// factor of two, 0 for an empty accumulator. Same estimator as
    /// `funnelpq::obs::OpStats::quantile_upper_bound`.
    pub fn quantile_upper_bound(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = ((q * self.count as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (i, &c) in self.buckets.iter().enumerate() {
            seen += c;
            if seen >= rank {
                return if i == 0 { 0 } else { 1u64 << i };
            }
        }
        self.max
    }

    /// Approximate median (upper bound of its log₂ bucket).
    pub fn p50(&self) -> u64 {
        self.quantile_upper_bound(0.50)
    }

    /// Approximate 99th percentile (upper bound of its log₂ bucket).
    pub fn p99(&self) -> u64 {
        self.quantile_upper_bound(0.99)
    }

    /// Approximate 99.9th percentile (upper bound of its log₂ bucket) —
    /// the serving layer's tail-latency headline.
    pub fn p999(&self) -> u64 {
        self.quantile_upper_bound(0.999)
    }

    /// Merges another accumulator into this one.
    pub fn merge(&mut self, other: &Acc) {
        if other.count == 0 {
            return;
        }
        if self.count == 0 {
            *self = other.clone();
            return;
        }
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
        self.count += other.count;
        self.sum += other.sum;
        self.sum_sq += other.sum_sq;
        for (b, o) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *b += o;
        }
    }
}

impl std::fmt::Display for Acc {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "n={} mean={:.1} min={} max={} sd={:.1}",
            self.count,
            self.mean(),
            self.min,
            self.max,
            self.std_dev()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn acc_basic() {
        let mut a = Acc::new();
        a.record(10);
        a.record(20);
        a.record(30);
        assert_eq!(a.count(), 3);
        assert_eq!(a.sum(), 60);
        assert_eq!(a.min(), 10);
        assert_eq!(a.max(), 30);
        assert!((a.mean() - 20.0).abs() < 1e-9);
    }

    #[test]
    fn acc_std_dev() {
        let mut a = Acc::new();
        for v in [2u64, 4, 4, 4, 5, 5, 7, 9] {
            a.record(v);
        }
        assert!((a.std_dev() - 2.0).abs() < 1e-9);
    }

    #[test]
    fn acc_empty() {
        let a = Acc::new();
        assert_eq!(a.count(), 0);
        assert_eq!(a.mean(), 0.0);
        assert_eq!(a.std_dev(), 0.0);
    }

    #[test]
    fn acc_merge() {
        let mut a = Acc::new();
        a.record(1);
        a.record(3);
        let mut b = Acc::new();
        b.record(5);
        b.record(100);
        a.merge(&b);
        assert_eq!(a.count(), 4);
        assert_eq!(a.min(), 1);
        assert_eq!(a.max(), 100);
        assert_eq!(a.sum(), 109);

        let mut empty = Acc::new();
        empty.merge(&a);
        assert_eq!(empty, a);
        let before = a.clone();
        a.merge(&Acc::new());
        assert_eq!(a, before);
    }

    #[test]
    fn acc_histogram_buckets() {
        let mut a = Acc::new();
        a.record(0);
        a.record(1);
        a.record(2);
        a.record(3);
        a.record(1024);
        let b = a.bucket_counts();
        assert_eq!(b[0], 1); // value 0
        assert_eq!(b[1], 1); // [1, 2)
        assert_eq!(b[2], 2); // [2, 4)
        assert_eq!(b[11], 1); // [1024, 2048)
        assert_eq!(b.iter().sum::<u64>(), a.count());
    }

    #[test]
    fn acc_quantiles() {
        let a = Acc::new();
        assert_eq!(a.p50(), 0);
        assert_eq!(a.p99(), 0);
        assert_eq!(a.p999(), 0);

        let mut a = Acc::new();
        for _ in 0..99 {
            a.record(5); // bucket 3: [4, 8)
        }
        a.record(1_000_000); // bucket 20
        assert_eq!(a.p50(), 8);
        assert_eq!(a.p99(), 8);
        assert_eq!(a.quantile_upper_bound(1.0), 1 << 20);
        // The quantile never reads below a sample's bucket lower edge.
        assert!(a.p50() > 5 / 2);
    }

    #[test]
    fn p999_splits_the_last_thousandth() {
        // 998 fast samples and two slow ones: p99 stays in the fast bucket
        // (rank 990), while p999 (nearest rank ⌈0.999·1000⌉ = 999) must
        // land in the slow one.
        let mut a = Acc::new();
        for _ in 0..998 {
            a.record(100); // bucket 7: [64, 128)
        }
        a.record(1 << 20);
        a.record(1 << 20);
        assert_eq!(a.p99(), 128);
        assert_eq!(a.p999(), 1 << 21);
        assert!(a.p50() <= a.p99() && a.p99() <= a.p999());
    }

    #[test]
    fn acc_merge_merges_buckets() {
        let mut a = Acc::new();
        a.record(3);
        let mut b = Acc::new();
        b.record(100);
        a.merge(&b);
        assert_eq!(a.bucket_counts().iter().sum::<u64>(), 2);
        assert_eq!(a.quantile_upper_bound(1.0), 128);
    }

    #[test]
    fn acc_display_nonempty() {
        let mut a = Acc::new();
        a.record(42);
        let text = a.to_string();
        assert!(text.contains("n=1"));
        assert!(text.contains("42"));
    }
}
