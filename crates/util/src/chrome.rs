//! Chrome Trace Format document builder, shared by the simulator's trace
//! exporter and the native `funnelpq::trace` drain so both render in the
//! same UI (`chrome://tracing`, <https://ui.perfetto.dev>).
//!
//! One row per event, compact JSON (a trace can hold hundreds of
//! thousands of rows). The builder owns the row shapes — metadata rows,
//! `X` complete slices, `B`/`E` span pairs, `i` instants, `C` counters —
//! and the document framing; callers decide pids/tids and what the rows
//! mean. Timestamps are written as microseconds because that is the unit
//! Perfetto assumes; the label is cosmetic, so callers map their own time
//! base onto it (the simulator writes cycles, the native tracer writes
//! nanoseconds).

use crate::json::esc;

/// Typed argument value for a row's `args` object.
pub enum Arg {
    /// Unsigned integer argument.
    U64(u64),
    /// Float argument, fixed three decimal places (counter samples).
    F3(f64),
    /// Escaped string argument.
    Str(String),
}

fn push_args(row: &mut String, args: &[(&str, Arg)]) {
    if args.is_empty() {
        return;
    }
    row.push_str(",\"args\":{");
    for (i, (k, v)) in args.iter().enumerate() {
        if i > 0 {
            row.push(',');
        }
        row.push('"');
        row.push_str(&esc(k));
        row.push_str("\":");
        match v {
            Arg::U64(n) => row.push_str(&n.to_string()),
            Arg::F3(x) => row.push_str(&format!("{x:.3}")),
            Arg::Str(s) => {
                row.push('"');
                row.push_str(&esc(s));
                row.push('"');
            }
        }
    }
    row.push('}');
}

/// Accumulates trace rows and renders the final document.
#[derive(Default)]
pub struct ChromeTrace {
    items: Vec<String>,
}

impl ChromeTrace {
    /// Empty trace.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of rows accumulated so far.
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// True when no rows have been added.
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    /// Metadata row naming a process track.
    pub fn process_name(&mut self, pid: u32, name: &str) {
        self.items.push(format!(
            "{{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":{},\"tid\":0,\
             \"args\":{{\"name\":\"{}\"}}}}",
            pid,
            esc(name)
        ));
    }

    /// Metadata row naming a thread track within a process.
    pub fn thread_name(&mut self, pid: u32, tid: u64, name: &str) {
        self.items.push(format!(
            "{{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":{},\"tid\":{},\
             \"args\":{{\"name\":\"{}\"}}}}",
            pid,
            tid,
            esc(name)
        ));
    }

    /// `X` complete slice: `[ts, ts+dur)` on one track.
    ///
    /// The parameter list mirrors the trace-row fields one-to-one; a
    /// grouping struct would only rename them.
    #[allow(clippy::too_many_arguments)]
    pub fn complete(
        &mut self,
        name: &str,
        cat: &str,
        pid: u32,
        tid: u64,
        ts: u64,
        dur: u64,
        args: &[(&str, Arg)],
    ) {
        let mut row = format!(
            "{{\"name\":\"{}\",\"cat\":\"{}\",\"ph\":\"X\",\"ts\":{},\"dur\":{},\
             \"pid\":{},\"tid\":{}",
            esc(name),
            esc(cat),
            ts,
            dur,
            pid,
            tid,
        );
        push_args(&mut row, args);
        row.push('}');
        self.items.push(row);
    }

    /// `B` span-begin marker (pair with [`ChromeTrace::end`]).
    pub fn begin(&mut self, name: &str, cat: &str, pid: u32, tid: u64, ts: u64) {
        self.items.push(format!(
            "{{\"name\":\"{}\",\"cat\":\"{}\",\"ph\":\"B\",\"ts\":{},\"pid\":{},\"tid\":{}}}",
            esc(name),
            esc(cat),
            ts,
            pid,
            tid,
        ));
    }

    /// `E` span-end marker.
    pub fn end(&mut self, name: &str, cat: &str, pid: u32, tid: u64, ts: u64) {
        self.items.push(format!(
            "{{\"name\":\"{}\",\"cat\":\"{}\",\"ph\":\"E\",\"ts\":{},\"pid\":{},\"tid\":{}}}",
            esc(name),
            esc(cat),
            ts,
            pid,
            tid,
        ));
    }

    /// `i` thread-scoped instant marker.
    pub fn instant(
        &mut self,
        name: &str,
        cat: &str,
        pid: u32,
        tid: u64,
        ts: u64,
        args: &[(&str, Arg)],
    ) {
        let mut row = format!(
            "{{\"name\":\"{}\",\"cat\":\"{}\",\"ph\":\"i\",\"s\":\"t\",\"ts\":{},\
             \"pid\":{},\"tid\":{}",
            esc(name),
            esc(cat),
            ts,
            pid,
            tid,
        );
        push_args(&mut row, args);
        row.push('}');
        self.items.push(row);
    }

    /// `C` counter sample (no category — Chrome ignores it on counters).
    pub fn counter(&mut self, name: &str, pid: u32, tid: u64, ts: u64, args: &[(&str, Arg)]) {
        let mut row = format!(
            "{{\"name\":\"{}\",\"ph\":\"C\",\"ts\":{},\"pid\":{},\"tid\":{}",
            esc(name),
            ts,
            pid,
            tid,
        );
        push_args(&mut row, args);
        row.push('}');
        self.items.push(row);
    }

    /// Renders the document: `traceEvents` array, one row per line, no
    /// trailing comma.
    pub fn finish(self) -> String {
        let mut out =
            String::with_capacity(self.items.iter().map(|s| s.len() + 2).sum::<usize>() + 64);
        out.push_str("{\"displayTimeUnit\":\"ms\",\"traceEvents\":[\n");
        for (i, item) in self.items.iter().enumerate() {
            out.push_str(item);
            if i + 1 < self.items.len() {
                out.push(',');
            }
            out.push('\n');
        }
        out.push_str("]}\n");
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn row_shapes() {
        let mut t = ChromeTrace::new();
        t.process_name(0, "processors");
        t.thread_name(0, 3, "proc 3");
        t.complete("cas", "txn", 0, 3, 10, 16, &[("queued", Arg::U64(2))]);
        t.begin("hold", "span", 0, 3, 10);
        t.end("hold", "span", 0, 3, 26);
        t.instant("spawn", "sched", 0, 3, 5, &[]);
        t.counter("depth: lock", 2, 0, 0, &[("depth", Arg::F3(0.5))]);
        assert_eq!(t.len(), 7);
        let j = t.finish();
        assert!(j.starts_with("{\"displayTimeUnit\":\"ms\",\"traceEvents\":[\n"));
        assert!(j.contains(
            "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":0,\"tid\":0,\
             \"args\":{\"name\":\"processors\"}}"
        ));
        assert!(j.contains(
            "{\"name\":\"cas\",\"cat\":\"txn\",\"ph\":\"X\",\"ts\":10,\"dur\":16,\
             \"pid\":0,\"tid\":3,\"args\":{\"queued\":2}}"
        ));
        assert!(j.contains("\"ph\":\"B\"") && j.contains("\"ph\":\"E\""));
        assert!(j.contains("\"ph\":\"i\",\"s\":\"t\",\"ts\":5,\"pid\":0,\"tid\":3}"));
        assert!(j.contains("{\"name\":\"depth: lock\",\"ph\":\"C\",\"ts\":0,\"pid\":2,\"tid\":0,\"args\":{\"depth\":0.500}}"));
        assert!(!j.contains(",\n]"));
        assert!(j.ends_with("]}\n"));
    }

    #[test]
    fn empty_document_is_valid() {
        let j = ChromeTrace::new().finish();
        assert_eq!(j, "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[\n]}\n");
    }
}
