//! Bounded exponential backoff, replacing `crossbeam_utils::Backoff`.

use std::cell::Cell;

const SPIN_LIMIT: u32 = 6;
const YIELD_LIMIT: u32 = 10;

/// Exponential backoff for contended retry loops: short spins first, then
/// progressively longer spins, then OS-level yields.
///
/// # Examples
///
/// ```
/// use funnelpq_util::Backoff;
/// let backoff = Backoff::new();
/// for _ in 0..4 {
///     backoff.snooze();
/// }
/// ```
#[derive(Debug, Default)]
pub struct Backoff {
    step: Cell<u32>,
}

impl Backoff {
    /// Creates a backoff at the shortest delay.
    pub fn new() -> Self {
        Backoff::default()
    }

    /// Resets to the shortest delay.
    pub fn reset(&self) {
        self.step.set(0);
    }

    /// Spins `2^step` times (capped), for lock-free retries where the
    /// awaited condition changes quickly.
    pub fn spin(&self) {
        let step = self.step.get().min(SPIN_LIMIT);
        for _ in 0..1u32 << step {
            std::hint::spin_loop();
        }
        if self.step.get() <= SPIN_LIMIT {
            self.step.set(self.step.get() + 1);
        }
    }

    /// Backs off while blocked on another thread: spins while cheap, then
    /// yields the processor so the partner can run.
    pub fn snooze(&self) {
        let step = self.step.get();
        if step <= SPIN_LIMIT {
            for _ in 0..1u32 << step {
                std::hint::spin_loop();
            }
        } else {
            std::thread::yield_now();
        }
        if step <= YIELD_LIMIT {
            self.step.set(step + 1);
        }
    }

    /// True once backoff has escalated to yielding; callers with a parking
    /// primitive should switch to it at this point.
    pub fn is_completed(&self) -> bool {
        self.step.get() > YIELD_LIMIT
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn escalates_to_completion() {
        let b = Backoff::new();
        assert!(!b.is_completed());
        for _ in 0..=YIELD_LIMIT {
            b.snooze();
        }
        assert!(b.is_completed());
        b.reset();
        assert!(!b.is_completed());
        b.spin();
    }
}
