//! Hand-rolled JSON writer shared by every emitter in the workspace: the
//! simulator's `TimeSeries`, the native `MetricsSnapshot`, the bench
//! `BENCH_*.json` files, and the server's `TelemetrySnapshot`. The
//! container builds fully offline, so there is no serde — instead every
//! crate used to carry its own `push_str` loop; this module is the one
//! copy of the escaping, separator, float and NaN rules they all share.
//!
//! Two house styles are covered:
//!
//! * **spaced** (`"k": v`, `", "` separators) — the human-facing metric
//!   and bench files;
//! * **compact** (`"k":v`, `","`) — the Chrome-trace exporter, where one
//!   row per event makes file size matter.
//!
//! Layout is explicit at the call site: a container opened with
//! `block = true` puts each element on its own line at two-space
//! indentation per depth; `block = false` packs the container on one
//! line. [`JsonWriter::begin_arr_compact`] additionally drops the space
//! after commas inside a single array (the time-series windows pack
//! hundreds of numeric samples per row).

/// Version stamp written into every machine-read JSON artifact
/// (`MetricsSnapshot`, `BENCH_*.json`, `TelemetrySnapshot`). CI
/// validators assert it so a parser and an emitter cannot silently
/// drift apart. Bump on any breaking layout change.
///
/// History: 2 added the server resilience fields (`restarts`, `requeued`,
/// `shed` in `TelemetrySnapshot`; the overload-regime rows in
/// `BENCH_server.json`) and the supervision counter events. 3 added the
/// NUMA controller surface (`numa_mode` / `mode_switches` totals and the
/// per-shard `numa` block in `TelemetrySnapshot`) and the
/// `BENCH_numa.json` crossover artifact.
pub const SCHEMA_VERSION: u32 = 3;

/// Minimal JSON string escaping for names (labels contain no exotic
/// characters, but quoting must never break the document).
pub fn esc(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

#[derive(Clone, Copy, PartialEq)]
enum Kind {
    Block,
    Inline,
    CompactArr,
}

struct Ctx {
    kind: Kind,
    obj: bool,
    has_elems: bool,
}

/// Streaming JSON builder: explicit `begin`/`end` containers, keys, and
/// typed values, with separator and indentation bookkeeping done here so
/// call sites only state layout intent.
pub struct JsonWriter {
    out: String,
    spaced: bool,
    stack: Vec<Ctx>,
    pending_value: bool,
}

impl JsonWriter {
    /// Writer in the spaced house style (`"k": v`, `", "`).
    pub fn spaced() -> Self {
        Self {
            out: String::new(),
            spaced: true,
            stack: Vec::new(),
            pending_value: false,
        }
    }

    /// Writer in the compact house style (`"k":v`, `","`).
    pub fn compact() -> Self {
        Self {
            out: String::new(),
            spaced: false,
            stack: Vec::new(),
            pending_value: false,
        }
    }

    fn indent(&mut self, depth: usize) {
        self.out.push('\n');
        for _ in 0..2 * depth {
            self.out.push(' ');
        }
    }

    /// Separator + layout before the next element (a key in an object, a
    /// value in an array). A value directly after `key()` skips this.
    fn elem(&mut self) {
        if self.pending_value {
            self.pending_value = false;
            return;
        }
        let depth = self.stack.len();
        if let Some(ctx) = self.stack.last_mut() {
            if ctx.has_elems {
                self.out.push(',');
                match ctx.kind {
                    Kind::Block => {}
                    Kind::Inline => {
                        if self.spaced {
                            self.out.push(' ');
                        }
                    }
                    Kind::CompactArr => {}
                }
            }
            ctx.has_elems = true;
            if ctx.kind == Kind::Block {
                self.indent(depth);
            }
        }
    }

    /// Object key: separator, quoted escaped name, colon.
    pub fn key(&mut self, k: &str) {
        debug_assert!(self.stack.last().map(|c| c.obj).unwrap_or(false));
        self.elem();
        self.out.push('"');
        self.out.push_str(&esc(k));
        self.out.push_str(if self.spaced { "\": " } else { "\":" });
        self.pending_value = true;
    }

    fn open(&mut self, obj: bool, kind: Kind) {
        self.elem();
        self.out.push(if obj { '{' } else { '[' });
        self.stack.push(Ctx {
            kind,
            obj,
            has_elems: false,
        });
    }

    /// Opens an object; `block` lays each member out on its own line.
    pub fn begin_obj(&mut self, block: bool) {
        self.open(true, if block { Kind::Block } else { Kind::Inline });
    }

    /// Opens an array; `block` lays each element out on its own line.
    pub fn begin_arr(&mut self, block: bool) {
        self.open(false, if block { Kind::Block } else { Kind::Inline });
    }

    /// Opens an inline array with no space after commas even in a spaced
    /// writer (dense numeric sample rows).
    pub fn begin_arr_compact(&mut self) {
        self.open(false, Kind::CompactArr);
    }

    /// Closes the innermost container.
    pub fn end(&mut self) {
        let ctx = self.stack.pop().expect("end without begin");
        if ctx.kind == Kind::Block && ctx.has_elems {
            let depth = self.stack.len();
            self.indent(depth);
        }
        self.out.push(if ctx.obj { '}' } else { ']' });
    }

    /// Unsigned integer value.
    pub fn u64(&mut self, v: u64) {
        self.elem();
        self.out.push_str(&v.to_string());
    }

    /// Signed integer value.
    pub fn i64(&mut self, v: i64) {
        self.elem();
        self.out.push_str(&v.to_string());
    }

    /// Float in shortest form; JSON has no NaN/Inf, so non-finite values
    /// clamp to `null`, which readers treat as missing.
    pub fn f64(&mut self, v: f64) {
        self.elem();
        if v.is_finite() {
            self.out.push_str(&format!("{v}"));
        } else {
            self.out.push_str("null");
        }
    }

    /// Float with fixed decimal places (non-finite clamps to `null`).
    pub fn f64_fixed(&mut self, v: f64, places: usize) {
        self.elem();
        if v.is_finite() {
            self.out.push_str(&format!("{v:.places$}"));
        } else {
            self.out.push_str("null");
        }
    }

    /// Quoted, escaped string value.
    pub fn str(&mut self, v: &str) {
        self.elem();
        self.out.push('"');
        self.out.push_str(&esc(v));
        self.out.push('"');
    }

    /// Boolean value.
    pub fn bool(&mut self, v: bool) {
        self.elem();
        self.out.push_str(if v { "true" } else { "false" });
    }

    /// Preformatted value appended verbatim (caller guarantees validity).
    pub fn raw(&mut self, v: &str) {
        self.elem();
        self.out.push_str(v);
    }

    /// `key` + [`JsonWriter::u64`].
    pub fn field_u64(&mut self, k: &str, v: u64) {
        self.key(k);
        self.u64(v);
    }

    /// `key` + [`JsonWriter::f64`].
    pub fn field_f64(&mut self, k: &str, v: f64) {
        self.key(k);
        self.f64(v);
    }

    /// `key` + [`JsonWriter::f64_fixed`].
    pub fn field_f64_fixed(&mut self, k: &str, v: f64, places: usize) {
        self.key(k);
        self.f64_fixed(v, places);
    }

    /// `key` + [`JsonWriter::str`].
    pub fn field_str(&mut self, k: &str, v: &str) {
        self.key(k);
        self.str(v);
    }

    /// Finishes the document and returns it. Panics if containers are
    /// still open — an unbalanced emitter is a bug, not a formatting
    /// choice.
    pub fn finish(self) -> String {
        assert!(self.stack.is_empty(), "unclosed JSON container");
        assert!(!self.pending_value, "key without value");
        self.out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn escaping() {
        assert_eq!(esc("plain"), "plain");
        assert_eq!(esc("a\"b\\c\n"), "a\\\"b\\\\c\\n");
        assert_eq!(esc("\u{1}"), "\\u0001");
    }

    #[test]
    fn spaced_block_layout() {
        let mut w = JsonWriter::spaced();
        w.begin_obj(true);
        w.field_str("benchmark", "t");
        w.field_u64("scale_percent", 100);
        w.key("results");
        w.begin_arr(true);
        w.begin_obj(false);
        w.field_str("name", "a");
        w.field_f64("x", 1.5);
        w.field_f64("bad", f64::NAN);
        w.end();
        w.end();
        w.end();
        let j = w.finish();
        assert_eq!(
            j,
            "{\n  \"benchmark\": \"t\",\n  \"scale_percent\": 100,\n  \"results\": [\n    \
             {\"name\": \"a\", \"x\": 1.5, \"bad\": null}\n  ]\n}"
        );
    }

    #[test]
    fn compact_and_dense_arrays() {
        let mut w = JsonWriter::compact();
        w.begin_obj(false);
        w.field_u64("a", 1);
        w.key("b");
        w.begin_arr(false);
        w.u64(1);
        w.u64(2);
        w.end();
        w.end();
        assert_eq!(w.finish(), "{\"a\":1,\"b\":[1,2]}");

        let mut w = JsonWriter::spaced();
        w.begin_arr_compact();
        w.f64_fixed(0.5, 3);
        w.u64(7);
        w.end();
        assert_eq!(w.finish(), "[0.500,7]");
    }

    #[test]
    fn empty_block_containers_stay_inline() {
        let mut w = JsonWriter::spaced();
        w.begin_obj(true);
        w.key("xs");
        w.begin_arr(true);
        w.end();
        w.end();
        assert_eq!(w.finish(), "{\n  \"xs\": []\n}");
    }
}
