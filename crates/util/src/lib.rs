//! # funnelpq-util
//!
//! Dependency-free primitives shared by every `funnelpq` crate:
//!
//! * [`XorShift64Star`] / [`AtomicRng`] — tiny deterministic PRNGs for hot
//!   paths (funnel slot selection, simulated coin flips) where pulling in a
//!   full RNG crate would cost a TLS access per call and an external
//!   dependency the offline build cannot fetch;
//! * [`CachePadded`] — pad-and-align wrapper keeping hot atomics on their
//!   own cache line;
//! * [`Backoff`] — bounded exponential spin/yield backoff for retry loops;
//! * [`Acc`] — running latency accumulator with a 32-bucket log₂ histogram
//!   (p50/p99/p999), shared by the simulator's stats layer and the
//!   `funnelpq-server` end-to-end latency accounting;
//! * [`json`] — the one hand-rolled JSON writer behind every metrics /
//!   bench / telemetry artifact (plus the shared [`json::SCHEMA_VERSION`]
//!   stamp CI validates);
//! * [`chrome`] — Chrome Trace Format document builder shared by the
//!   simulator exporter and the native tracer;
//! * [`SeqRing`] — lock-free seqlock ring buffer for fixed-width trace
//!   records (flight-recorder semantics);
//! * [`mono_ns`] — process-wide monotonic nanosecond clock for
//!   cross-thread trace timestamps.
//!
//! Everything here is `std`-only and deliberately small; these types exist
//! so the workspace builds with no external crates at all.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

mod acc;
mod backoff;
pub mod chrome;
mod clock;
pub mod json;
mod pad;
mod ring;
mod rng;

pub use acc::{Acc, ACC_BUCKETS};
pub use backoff::Backoff;
pub use clock::mono_ns;
pub use pad::CachePadded;
pub use ring::SeqRing;
pub use rng::{splitmix64, AtomicRng, XorShift64Star};
