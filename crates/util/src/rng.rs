//! Small deterministic pseudo-random number generators.
//!
//! The workspace needs randomness in two very different places: simulated
//! processors (single-threaded, interior-mutable contexts) and native funnel
//! hot paths (per-thread slot selection on every collision attempt). Both
//! are served by xorshift64\* (Vigna, *An experimental exploration of
//! Marsaglia's xorshift generators, scrambled*): 3 shifts, 3 xors and one
//! multiply per draw, full 2^64−1 period, and good enough statistical
//! quality for load spreading and workload generation.

use std::sync::atomic::{AtomicU64, Ordering};

/// One step of the SplitMix64 generator; used to turn arbitrary seeds
/// (including 0 and small consecutive integers such as thread ids) into
/// well-mixed, nonzero xorshift states.
pub fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

const XORSHIFT_MULT: u64 = 0x2545_F491_4F6C_DD1D;

fn xorshift_step(x: u64) -> u64 {
    let mut x = x;
    x ^= x >> 12;
    x ^= x << 25;
    x ^= x >> 27;
    x
}

/// A sequential xorshift64\* generator.
///
/// # Examples
///
/// ```
/// use funnelpq_util::XorShift64Star;
/// let mut a = XorShift64Star::new(7);
/// let mut b = XorShift64Star::new(7);
/// assert_eq!(a.next_u64(), b.next_u64());
/// assert!(a.below(10) < 10);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct XorShift64Star {
    state: u64,
}

impl XorShift64Star {
    /// Creates a generator from an arbitrary seed (any value, including 0).
    pub fn new(seed: u64) -> Self {
        let mut s = seed;
        let state = splitmix64(&mut s) | 1; // never zero
        XorShift64Star { state }
    }

    /// Next raw 64-bit draw.
    pub fn next_u64(&mut self) -> u64 {
        self.state = xorshift_step(self.state);
        self.state.wrapping_mul(XORSHIFT_MULT)
    }

    /// Uniform value in `0..n` via the widening-multiply range reduction.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn below(&mut self, n: u64) -> u64 {
        assert!(n > 0, "below(0) is meaningless");
        (((self.next_u64() as u128) * (n as u128)) >> 64) as u64
    }

    /// Bernoulli draw: true with probability `p` (clamped to `[0, 1]`).
    pub fn bool_with(&mut self, p: f64) -> bool {
        // 53 uniform mantissa bits in [0, 1).
        let u = (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        u < p
    }
}

/// A xorshift64\* generator whose state lives in an `AtomicU64`, so it can
/// be embedded in `Sync` per-thread records (funnel collision records are
/// owned by one thread but stored in a shared array).
///
/// All accesses are `Relaxed` single-owner load/stores: this is *not* a
/// concurrent RNG — two threads advancing the same `AtomicRng` will produce
/// overlapping streams (never UB, just poor randomness). That matches the
/// funnel structures' thread-id contract.
#[derive(Debug)]
pub struct AtomicRng {
    state: AtomicU64,
}

impl AtomicRng {
    /// Creates a generator seeded (via SplitMix64) from `seed` — typically
    /// the owning dense thread id.
    pub fn new(seed: u64) -> Self {
        let mut s = seed;
        AtomicRng {
            state: AtomicU64::new(splitmix64(&mut s) | 1),
        }
    }

    /// Next raw 64-bit draw.
    pub fn next_u64(&self) -> u64 {
        let x = xorshift_step(self.state.load(Ordering::Relaxed));
        self.state.store(x, Ordering::Relaxed);
        x.wrapping_mul(XORSHIFT_MULT)
    }

    /// Uniform value in `0..n`.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn below(&self, n: u64) -> u64 {
        assert!(n > 0, "below(0) is meaningless");
        (((self.next_u64() as u128) * (n as u128)) >> 64) as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let mut a = XorShift64Star::new(42);
        let mut b = XorShift64Star::new(42);
        let mut c = XorShift64Star::new(43);
        let va: Vec<u64> = (0..8).map(|_| a.next_u64()).collect();
        let vb: Vec<u64> = (0..8).map(|_| b.next_u64()).collect();
        let vc: Vec<u64> = (0..8).map(|_| c.next_u64()).collect();
        assert_eq!(va, vb);
        assert_ne!(va, vc);
    }

    #[test]
    fn zero_seed_is_fine() {
        let mut r = XorShift64Star::new(0);
        let draws: Vec<u64> = (0..16).map(|_| r.next_u64()).collect();
        assert!(draws.iter().any(|&x| x != 0));
        let mut uniq = draws.clone();
        uniq.sort_unstable();
        uniq.dedup();
        assert_eq!(uniq.len(), draws.len());
    }

    #[test]
    fn below_is_in_range_and_covers() {
        let mut r = XorShift64Star::new(9);
        let mut seen = [false; 7];
        for _ in 0..1000 {
            let v = r.below(7) as usize;
            assert!(v < 7);
            seen[v] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn bool_with_extremes_and_middle() {
        let mut r = XorShift64Star::new(1);
        assert!((0..100).all(|_| !r.bool_with(0.0)));
        assert!((0..100).all(|_| r.bool_with(1.0)));
        let heads = (0..10_000).filter(|_| r.bool_with(0.5)).count();
        assert!((4_000..6_000).contains(&heads), "heads={heads}");
    }

    #[test]
    fn atomic_rng_matches_sequential() {
        let a = AtomicRng::new(5);
        let mut s = XorShift64Star::new(5);
        for _ in 0..32 {
            assert_eq!(a.next_u64(), s.next_u64());
        }
        assert!(a.below(10) < 10);
    }

    #[test]
    fn consecutive_seeds_decorrelate() {
        // Thread ids 0,1,2.. must not produce correlated streams.
        let mut r0 = XorShift64Star::new(0);
        let mut r1 = XorShift64Star::new(1);
        let same = (0..64).filter(|_| r0.next_u64() == r1.next_u64()).count();
        assert_eq!(same, 0);
    }
}
