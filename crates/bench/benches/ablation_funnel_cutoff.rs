//! Ablation for §3.2's claim: using funnels at *every* tree level (instead
//! of the four-level cutoff with MCS-locked counters below) costs about 5%
//! at high concurrency — the deep counters see little traffic, so the
//! funnel machinery there is overhead without benefit.

use funnelpq_bench::{lat, print_table, standard_workload};
use funnelpq_simqueues::queues::{Algorithm, BuildParams};
use funnelpq_simqueues::workload::{run_queue_workload, run_queue_workload_with};

fn main() {
    let mut rows = Vec::new();
    for &p in &[16usize, 64, 256] {
        let wl = standard_workload(p, 128); // deep tree: 7 levels
        let mut row = vec![p.to_string()];
        for (label, levels) in [
            ("cutoff-4", 4usize),
            ("funnels-everywhere", usize::MAX),
            ("locked-counters", 0),
        ] {
            let mut params = BuildParams::new(wl.procs, wl.num_priorities);
            params.capacity = (wl.procs * wl.ops_per_proc).max(64) + 8;
            params.funnel_levels = levels;
            let r = run_queue_workload_with(Algorithm::FunnelTree, &wl, &params);
            let _ = label;
            row.push(lat(r.all.mean()));
        }
        rows.push(row);
    }
    print_table(
        "FunnelTree ablation — funnel-level cutoff (mean latency, cycles; 128 priorities)",
        &[
            "P",
            "cutoff-4 (paper)",
            "funnels everywhere",
            "locked counters only",
        ],
        &rows,
    );

    // Counter-implementation ablation: what would hardware fetch-and-add
    // buy? (Outside the paper's swap/CAS machine model — its Figure 1
    // implements FaI/BFaD "in hardware or using combining funnels".)
    let mut rows = Vec::new();
    for &p in &[16usize, 64, 256] {
        let wl = standard_workload(p, 16);
        let mut row = vec![p.to_string()];
        for algo in [
            Algorithm::SimpleTree,
            Algorithm::HardwareTree,
            Algorithm::FunnelTree,
        ] {
            let r = run_queue_workload(algo, &wl);
            row.push(lat(r.all.mean()));
        }
        rows.push(row);
    }
    print_table(
        "Counter-implementation ablation — tree queue, 16 priorities",
        &[
            "P",
            "MCS-locked (SimpleTree)",
            "hardware F&A",
            "funnels (FunnelTree)",
        ],
        &rows,
    );
}
