//! `numa_sweep` — the NUMA-adaptive crossover experiment (native).
//!
//! Sweeps the ninth algorithm's two static modes and the adaptive
//! controller over contention regimes (thread counts) × emulated
//! interconnect costs (`remote_ns`, the busy-wait knob standing in for a
//! real machine's local:remote latency ratio; see `funnelpq::Topology`).
//! The claim under test is the SmartPQ-style crossover:
//!
//! - cheap interconnect (`remote_ns = 0`): NUMA-oblivious two-choice wins
//!   — delegation pays its request/spin protocol for nothing;
//! - expensive interconnect: delegation wins — inserts stay node-local
//!   and remote delete-mins are served by a co-located thread instead of
//!   bouncing three cache lines across the socket gap;
//! - the adaptive controller must track whichever static mode is better
//!   at *both* extremes, and a shifting phase (the `remote_ns` knob is
//!   raised live mid-run) must record at least one mode switch-over.
//!
//! The in-process assertions mirror what CI checks against the emitted
//! `BENCH_numa.json` (schema-validated, adaptive ≥ worst static at both
//! extremes), so a regression fails the bench run itself, not only the
//! JSON validator.

use std::sync::Arc;
use std::time::Instant;

use funnelpq::{AdaptiveStats, BoundedPq, NumaConfig, NumaMode, NumaPolicy, NumaPq};
use funnelpq_bench::{print_table, scale_percent, write_bench_json, BenchRecord};

const NUM_PRIS: usize = 64;
const NODES: usize = 2;
/// Small epochs so the controller settles within the warmup at every
/// scale CI runs.
const EPOCH_OPS: u32 = 64;

/// The two latency extremes of the sweep; the middle points trace the
/// crossover between them.
const REMOTE_NS: [u64; 4] = [0, 500, 2_000, 8_000];
const THREADS: [usize; 2] = [2, 4];

fn build(threads: usize, remote_ns: u64, policy: NumaPolicy) -> Arc<NumaPq<u64>> {
    Arc::new(NumaPq::new(
        NUM_PRIS,
        threads,
        NumaConfig {
            nodes: NODES,
            remote_ns,
            epoch_ops: EPOCH_OPS,
            policy,
            ..NumaConfig::default()
        },
    ))
}

/// Standing population per thread: the sweep measures steady-state mixed
/// load, not drain races — with empty heaps every delete degenerates to
/// the global sweep and the modes stop being distinguishable.
const POP_PER_THREAD: usize = 1_024;

/// Seeds the standing population round-robin over tids so each mode's
/// placement policy (global scatter vs node-local) shapes where the
/// items actually live.
fn prefill(q: &NumaPq<u64>, threads: usize) {
    for i in 0..threads * POP_PER_THREAD {
        q.insert(i % threads, i % NUM_PRIS, i as u64);
    }
}

/// Drives `pairs` insert+delete pairs per thread across `threads` OS
/// threads (tid = thread index) and returns ns per pair. `warmup` pairs
/// per thread run untimed first so the adaptive controller settles into
/// its steady mode before the clock starts.
fn time_pairs(q: &Arc<NumaPq<u64>>, threads: usize, warmup: u64, pairs: u64) -> f64 {
    let phase = |n: u64| {
        let handles: Vec<_> = (0..threads)
            .map(|tid| {
                let q = Arc::clone(q);
                std::thread::spawn(move || {
                    let mut k = tid as u64;
                    for _ in 0..n {
                        k = k.wrapping_add(7);
                        q.insert(tid, (k % NUM_PRIS as u64) as usize, k);
                        std::hint::black_box(q.delete_min(tid));
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
    };
    phase(warmup);
    // Min of three timed reps: on a one-CPU host the scheduler's slice
    // boundaries are the dominant noise source, and the fastest rep is
    // the one least perturbed by them.
    (0..3)
        .map(|_| {
            let t0 = Instant::now();
            phase(pairs);
            t0.elapsed().as_nanos() as f64 / (pairs * threads as u64) as f64
        })
        .fold(f64::INFINITY, f64::min)
}

struct Cell {
    threads: usize,
    remote_ns: u64,
    oblivious_ns: f64,
    delegation_ns: f64,
    adaptive_ns: f64,
    adaptive_stats: AdaptiveStats,
}

fn sweep(warmup: u64, pairs: u64) -> Vec<Cell> {
    let mut cells = Vec::new();
    for &threads in &THREADS {
        for &remote_ns in &REMOTE_NS {
            // Equalize measured wall time across the sweep: a cheap cell
            // finishes a pair in ~150ns, a spiked one in ~25us, and a
            // too-short timed phase is all scheduler noise.
            let pairs = if remote_ns < 2_000 { pairs * 10 } else { pairs };
            let run = |policy: NumaPolicy| {
                let q = build(threads, remote_ns, policy);
                prefill(&q, threads);
                let ns = time_pairs(&q, threads, warmup, pairs);
                (ns, q.adaptive_stats().expect("NumaPq exposes stats"))
            };
            let (oblivious_ns, _) = run(NumaPolicy::Pinned(NumaMode::Oblivious));
            let (delegation_ns, _) = run(NumaPolicy::Pinned(NumaMode::Delegation));
            let (adaptive_ns, adaptive_stats) = run(NumaPolicy::Adaptive);
            cells.push(Cell {
                threads,
                remote_ns,
                oblivious_ns,
                delegation_ns,
                adaptive_ns,
                adaptive_stats,
            });
        }
    }
    cells
}

/// The live switch-over demonstration: one adaptive queue, the
/// interconnect knob raised from free to punitive mid-run. Returns the
/// controller snapshot after both phases.
fn shifting_phase(threads: usize, warmup: u64, pairs: u64) -> (f64, f64, AdaptiveStats) {
    let q = build(threads, 0, NumaPolicy::Adaptive);
    prefill(&q, threads);
    let cheap_ns = time_pairs(&q, threads, warmup, pairs);
    let before = q.adaptive_stats().expect("stats");
    assert_eq!(
        before.mode,
        NumaMode::Oblivious,
        "free interconnect must leave the controller oblivious"
    );
    q.topology().set_remote_ns(8_000);
    let dear_ns = time_pairs(&q, threads, warmup, pairs);
    let after = q.adaptive_stats().expect("stats");
    assert!(
        after.switches > before.switches,
        "raising remote_ns live must record a switch-over \
         (before {before:?}, after {after:?})"
    );
    assert_eq!(
        after.mode,
        NumaMode::Delegation,
        "punitive interconnect must end in delegation ({after:?})"
    );
    (cheap_ns, dear_ns, after)
}

fn main() {
    // The controller needs a few epochs to settle: keep the warmup fixed
    // (not scaled) so FAST runs still measure steady-state behaviour.
    let warmup = 8 * u64::from(EPOCH_OPS);
    let pairs = (2_000u64 * scale_percent() as u64 / 100).max(200);

    let cells = sweep(warmup, pairs);
    print_table(
        "NUMA sweep: ns/pair by mode (2 nodes)",
        &[
            "threads",
            "remote_ns",
            "oblivious",
            "delegation",
            "adaptive",
            "adaptive mode",
            "switches",
        ],
        &cells
            .iter()
            .map(|c| {
                vec![
                    c.threads.to_string(),
                    c.remote_ns.to_string(),
                    format!("{:.0}", c.oblivious_ns),
                    format!("{:.0}", c.delegation_ns),
                    format!("{:.0}", c.adaptive_ns),
                    c.adaptive_stats.mode.name().to_string(),
                    c.adaptive_stats.switches.to_string(),
                ]
            })
            .collect::<Vec<_>>(),
    );

    let (cheap_ns, dear_ns, shift) = shifting_phase(2, warmup, pairs);
    println!(
        "shifting phase: {cheap_ns:.0} ns/pair cheap -> {dear_ns:.0} ns/pair dear, \
         {} switch(es), final mode {}",
        shift.switches,
        shift.mode.name()
    );

    let mut records: Vec<BenchRecord> = cells
        .iter()
        .map(|c| BenchRecord {
            name: format!("t{}_remote{}", c.threads, c.remote_ns),
            fields: vec![
                ("threads", c.threads as f64),
                ("remote_ns", c.remote_ns as f64),
                ("oblivious_ns_per_pair", c.oblivious_ns),
                ("delegation_ns_per_pair", c.delegation_ns),
                ("adaptive_ns_per_pair", c.adaptive_ns),
                (
                    "adaptive_mode_delegation",
                    f64::from(c.adaptive_stats.mode == NumaMode::Delegation),
                ),
                ("adaptive_switches", c.adaptive_stats.switches as f64),
                ("adaptive_delegated", c.adaptive_stats.delegated as f64),
                ("adaptive_self_served", c.adaptive_stats.self_served as f64),
            ],
        })
        .collect();

    // Extreme summaries at the highest-contention row: the acceptance
    // numbers CI re-checks from the JSON. Ratios are throughput ratios
    // (inverse ns), > 1.0 meaning adaptive is faster.
    for (label, remote_ns) in [("extreme_low", REMOTE_NS[0]), ("extreme_high", 8_000)] {
        let c = cells
            .iter()
            .find(|c| c.threads == *THREADS.last().unwrap() && c.remote_ns == remote_ns)
            .expect("extreme cell swept");
        let best = c.oblivious_ns.min(c.delegation_ns);
        let worst = c.oblivious_ns.max(c.delegation_ns);
        let over_best = best / c.adaptive_ns;
        let over_worst = worst / c.adaptive_ns;
        assert!(
            over_worst >= 1.3,
            "{label}: adaptive must beat the wrong static mode by 1.3x \
             (adaptive {:.0} ns, worst {worst:.0} ns)",
            c.adaptive_ns
        );
        assert!(
            over_best >= 0.9,
            "{label}: adaptive must stay within 10% of the best static mode \
             (adaptive {:.0} ns, best {best:.0} ns)",
            c.adaptive_ns
        );
        records.push(BenchRecord {
            name: label.to_string(),
            fields: vec![
                ("remote_ns", remote_ns as f64),
                ("adaptive_ns_per_pair", c.adaptive_ns),
                ("best_static_ns_per_pair", best),
                ("worst_static_ns_per_pair", worst),
                ("adaptive_over_best", over_best),
                ("adaptive_over_worst", over_worst),
            ],
        });
    }
    records.push(BenchRecord {
        name: "shifting".to_string(),
        fields: vec![
            ("cheap_ns_per_pair", cheap_ns),
            ("dear_ns_per_pair", dear_ns),
            ("switches", shift.switches as f64),
            (
                "final_mode_delegation",
                f64::from(shift.mode == NumaMode::Delegation),
            ),
            ("delegated", shift.delegated as f64),
            ("self_served", shift.self_served as f64),
        ],
    });

    let root = concat!(env!("CARGO_MANIFEST_DIR"), "/../..");
    let path = format!("{root}/BENCH_numa.json");
    match write_bench_json(&path, "numa_sweep", &records) {
        Ok(()) => println!("wrote {path}"),
        Err(e) => eprintln!("could not write {path}: {e}"),
    }
}
