//! Figure 6: latency of all seven priority-queue implementations with 16
//! priorities at low concurrency (2–16 processors).
//!
//! Expected shape (paper §4.1): SingleLock and HuntEtAl rise steeply
//! (roughly linearly); SkipList does slightly better; SimpleLinear leads;
//! LinearFunnels is ~2–3x SimpleLinear; FunnelTree ≈ SimpleTree, both
//! ~40–50% above SimpleLinear.

use funnelpq_bench::{
    all_algorithms, lat, print_table, standard_workload, trace_enabled, write_trace_artifacts,
};
use funnelpq_simqueues::queues::Algorithm;
use funnelpq_simqueues::workload::run_queue_workload;

fn main() {
    let procs = [2usize, 4, 6, 8, 10, 12, 14, 16];
    let mut rows = Vec::new();
    for &p in &procs {
        let wl = standard_workload(p, 16);
        let mut row = vec![p.to_string()];
        for algo in all_algorithms() {
            let r = run_queue_workload(algo, &wl);
            row.push(lat(r.all.mean()));
        }
        rows.push(row);
    }
    let mut header = vec!["P"];
    let names: Vec<&str> = all_algorithms().iter().map(|a| a.name()).collect();
    header.extend(names);
    print_table(
        "Figure 6 — mean access latency (cycles), 16 priorities, low concurrency",
        &header,
        &rows,
    );

    // Exemplar trace: the steepest riser of the figure at its top point.
    if trace_enabled() {
        let wl = standard_workload(16, 16);
        let (trace, series) = write_trace_artifacts("fig6", Algorithm::SingleLock, &wl)
            .expect("write fig6 trace artifacts");
        println!("wrote {trace} and {series}");
    }
}
