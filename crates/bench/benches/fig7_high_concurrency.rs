//! Figure 7: latency of the four scalable implementations with 16
//! priorities from 2 to 256 processors — and, beyond the paper, optional
//! 512/1024-processor rows (`FUNNELPQ_MAX_P=1024`) that the event-wheel
//! scheduler makes practical.
//!
//! Expected shape (paper §4.1): SimpleLinear fastest until ~32 processors;
//! SimpleTree slowest at high concurrency (root counter hot spot);
//! FunnelTree takes the lead around 64 processors and at 256 is ~8x faster
//! than SimpleTree and ~3x faster than SimpleLinear.

use funnelpq_bench::{
    lat, max_procs, print_table, scalable_algorithms, standard_workload, trace_enabled,
    write_trace_artifacts,
};
use funnelpq_simqueues::queues::Algorithm;
use funnelpq_simqueues::workload::run_queue_workload;

fn main() {
    let all_procs = [2usize, 4, 8, 16, 32, 64, 128, 256, 512, 1024];
    let cap = max_procs();
    let mut rows = Vec::new();
    for &p in all_procs.iter().filter(|&&p| p <= cap) {
        let wl = standard_workload(p, 16);
        let mut row = vec![p.to_string()];
        for algo in scalable_algorithms() {
            let r = run_queue_workload(algo, &wl);
            row.push(lat(r.all.mean()));
        }
        rows.push(row);
    }
    let mut header = vec!["P"];
    header.extend(scalable_algorithms().iter().map(|a| a.name()));
    print_table(
        &format!(
            "Figure 7 — mean access latency (cycles), 16 priorities, 2..{} processors",
            all_procs.iter().filter(|&&p| p <= cap).max().unwrap()
        ),
        &header,
        &rows,
    );

    // Exemplar trace: FunnelTree at the crossover point where it takes the
    // lead from SimpleLinear.
    if trace_enabled() {
        let wl = standard_workload(64, 16);
        let (trace, series) = write_trace_artifacts("fig7", Algorithm::FunnelTree, &wl)
            .expect("write fig7 trace artifacts");
        println!("wrote {trace} and {series}");
    }
}
