//! Figure 7: latency of the four scalable implementations with 16
//! priorities from 2 to 256 processors.
//!
//! Expected shape (paper §4.1): SimpleLinear fastest until ~32 processors;
//! SimpleTree slowest at high concurrency (root counter hot spot);
//! FunnelTree takes the lead around 64 processors and at 256 is ~8x faster
//! than SimpleTree and ~3x faster than SimpleLinear.

use funnelpq_bench::{lat, print_table, scalable_algorithms, standard_workload};
use funnelpq_simqueues::workload::run_queue_workload;

fn main() {
    let procs = [2usize, 4, 8, 16, 32, 64, 128, 256];
    let mut rows = Vec::new();
    for &p in &procs {
        let wl = standard_workload(p, 16);
        let mut row = vec![p.to_string()];
        for algo in scalable_algorithms() {
            let r = run_queue_workload(algo, &wl);
            row.push(lat(r.all.mean()));
        }
        rows.push(row);
    }
    let mut header = vec!["P"];
    header.extend(scalable_algorithms().iter().map(|a| a.name()));
    print_table(
        "Figure 7 — mean access latency (cycles), 16 priorities, 2..256 processors",
        &header,
        &rows,
    );
}
