//! Figure 9: latency as the priority range goes from 2 to 512 at 64
//! processors (left graph) and 256 processors (right graph; SimpleTree is
//! "off the graph" there, and the paper omits it).
//!
//! Expected shape: SimpleLinear is "U"-shaped at 64 P (more work vs. less
//! contention); LinearFunnels slows roughly linearly with N (each new
//! funnel costs more than the contention it saves); SimpleTree is almost
//! flat (root-dominated); FunnelTree grows less than logarithmically and
//! is the only method that works well across nearly all priority ranges at
//! high concurrency.

use funnelpq_bench::{
    lat, print_table, scalable_algorithms, standard_workload, trace_enabled, write_trace_artifacts,
};
use funnelpq_simqueues::queues::Algorithm;
use funnelpq_simqueues::workload::run_queue_workload;

fn sweep(procs: usize, include_simple_tree: bool) {
    let priorities = [2usize, 4, 8, 16, 32, 64, 128, 256, 512];
    let algos: Vec<Algorithm> = scalable_algorithms()
        .into_iter()
        .filter(|a| include_simple_tree || *a != Algorithm::SimpleTree)
        .collect();
    let mut rows = Vec::new();
    for &n in &priorities {
        let wl = standard_workload(procs, n);
        let mut row = vec![n.to_string()];
        for &algo in &algos {
            let r = run_queue_workload(algo, &wl);
            row.push(lat(r.all.mean()));
        }
        rows.push(row);
    }
    let mut header = vec!["N"];
    header.extend(algos.iter().map(|a| a.name()));
    print_table(
        &format!("Figure 9 — mean access latency (cycles) vs. priorities, {procs} processors"),
        &header,
        &rows,
    );
}

fn main() {
    sweep(64, true);
    sweep(256, false); // SimpleTree off-graph at 256, as in the paper

    // Exemplar trace: the wide-priority-range point where FunnelTree's
    // sub-logarithmic growth shows.
    if trace_enabled() {
        let wl = standard_workload(64, 256);
        let (trace, series) = write_trace_artifacts("fig9", Algorithm::FunnelTree, &wl)
            .expect("write fig9 trace artifacts");
        println!("wrote {trace} and {series}");
    }
}
