//! MultiQueue evaluation: native cost of the relaxed queue (including a
//! stickiness A/B), and the simulated high-concurrency sweep against
//! FunnelTree — the trade the MultiQueue offers is *throughput for
//! ordering quality*, so every sim row records both the mean access
//! latency and the drain rank-error distribution from the audit.
//!
//! The sweep runs through the chaos harness with an **empty** fault plan:
//! that is the one driver that both reproduces the fault-free workload
//! bit-for-bit and audits the post-run drain, which is where the
//! rank-error numbers come from. The paper's seven strict algorithms ride
//! along at the lowest sweep point as a zero-check — their drain rank
//! error must be exactly 0.

use std::sync::Arc;
use std::time::Instant;

use funnelpq::{Algorithm, BoundedPq, MultiQueueConfig, PqBuilder, PqConfig};
use funnelpq_bench::{
    max_procs, print_table, scale_percent, standard_workload, write_bench_json, BenchRecord,
};
use funnelpq_sim::FaultPlan;
use funnelpq_simqueues::chaos::{run_chaos_workload, ChaosRun, DEFAULT_WATCHDOG};
use funnelpq_simqueues::workload::Workload;

/// Two native threads hammering insert+delete pairs; ns per pair.
fn two_thread_pairs(q: Arc<dyn BoundedPq<u64>>, reps: u64) -> f64 {
    const OPS: u64 = 200;
    let t0 = Instant::now();
    for _ in 0..reps {
        let q2 = Arc::clone(&q);
        let h = std::thread::spawn(move || {
            for i in 0..OPS {
                q2.insert(1, (i % 16) as usize, i);
                std::hint::black_box(q2.delete_min(1));
            }
        });
        for i in 0..OPS {
            q.insert(0, (i % 16) as usize, i);
            std::hint::black_box(q.delete_min(0));
        }
        h.join().unwrap();
    }
    t0.elapsed().as_nanos() as f64 / (reps * OPS * 2) as f64
}

fn native_multiqueue(stickiness: u32, reps: u64) -> f64 {
    let cfg = PqConfig::MultiQueue(MultiQueueConfig {
        stickiness,
        ..MultiQueueConfig::default()
    });
    let q: Arc<dyn BoundedPq<u64>> = Arc::from(PqBuilder::from_config(cfg, 16, 2).build::<u64>());
    two_thread_pairs(q, reps)
}

fn chaos_fault_free(algo: Algorithm, wl: &Workload) -> ChaosRun {
    run_chaos_workload(algo, wl, &FaultPlan::new(0), DEFAULT_WATCHDOG)
        .unwrap_or_else(|e| panic!("{algo}: fault-free sweep run failed: {e}"))
}

fn main() {
    let reps = (30u64 * scale_percent() as u64 / 100).max(3);

    // Native A/B 1: the stickiness batching refinement. Stickiness 1 draws
    // fresh queues every operation (the original two-choice design);
    // stickiness 8 amortizes the draws and keeps a thread's working set on
    // its own queue's cache lines.
    let sticky1 = native_multiqueue(1, reps);
    let sticky8 = native_multiqueue(8, reps);

    // Native A/B 2: the relaxed queue against the strict scalable
    // reference under the same two-thread load.
    let ft_cfg = PqConfig::for_algorithm(Algorithm::FunnelTree).unwrap();
    let funnel_tree: Arc<dyn BoundedPq<u64>> =
        Arc::from(PqBuilder::from_config(ft_cfg, 16, 2).build::<u64>());
    let ft_ns = two_thread_pairs(funnel_tree, reps);

    print_table(
        "Native MultiQueue two-thread pair cost",
        &["configuration", "ns/pair"],
        &[
            vec!["MultiQueue (stickiness 1)".into(), format!("{sticky1:.0}")],
            vec!["MultiQueue (stickiness 8)".into(), format!("{sticky8:.0}")],
            vec!["FunnelTree (strict)".into(), format!("{ft_ns:.0}")],
        ],
    );

    // Simulated sweep: the fig7 shape, restricted to the crossover region
    // and above, FunnelTree vs MultiQueue, with drain quality recorded.
    let all_procs = [64usize, 128, 256, 512, 1024];
    let cap = max_procs();
    let sweep: Vec<usize> = all_procs.iter().copied().filter(|&p| p <= cap).collect();
    let mut rows = Vec::new();
    let mut records = vec![
        BenchRecord {
            name: "native_sticky_ab".into(),
            fields: vec![
                ("sticky1_ns_per_pair", sticky1),
                ("sticky8_ns_per_pair", sticky8),
                ("sticky_delta_percent", (sticky1 / sticky8 - 1.0) * 100.0),
            ],
        },
        BenchRecord {
            name: "native_vs_funneltree".into(),
            fields: vec![
                ("multiqueue_ns_per_pair", sticky8),
                ("funneltree_ns_per_pair", ft_ns),
            ],
        },
    ];
    for &p in &sweep {
        let wl = standard_workload(p, 16);
        let ft = chaos_fault_free(Algorithm::FunnelTree, &wl);
        let mq = chaos_fault_free(Algorithm::MultiQueue, &wl);
        let ranks = &mq.report.rank_error;
        rows.push(vec![
            p.to_string(),
            format!("{:.0}", ft.result.all.mean()),
            format!("{:.0}", mq.result.all.mean()),
            format!("{:.2}", ft.result.all.mean() / mq.result.all.mean()),
            ranks.p50().to_string(),
            ranks.p99().to_string(),
            ranks.max().to_string(),
        ]);
        for (algo, run) in [(Algorithm::FunnelTree, &ft), (Algorithm::MultiQueue, &mq)] {
            records.push(BenchRecord {
                name: format!("sim_p{p}_{}", algo.name()),
                fields: vec![
                    ("mean_latency_cycles", run.result.all.mean()),
                    ("rank_error_p50", run.report.rank_error.p50() as f64),
                    ("rank_error_p99", run.report.rank_error.p99() as f64),
                    ("rank_error_max", run.report.rank_error.max() as f64),
                ],
            });
        }
    }
    print_table(
        "MultiQueue vs FunnelTree — mean access latency (cycles) and MultiQueue drain rank error",
        &[
            "P",
            "FunnelTree",
            "MultiQueue",
            "speedup",
            "rank p50",
            "rank p99",
            "rank max",
        ],
        &rows,
    );

    // Zero-check: each strict algorithm's audited drain at the lowest
    // sweep point has rank error exactly 0. SingleLock and HuntEtAl would
    // serialize a 64-processor run for minutes; the property is about
    // ordering, not scale, so the paper's seven run at 16 processors.
    let wl = standard_workload(16, 16);
    let mut zero_rows = Vec::new();
    for algo in Algorithm::ALL {
        let run = chaos_fault_free(algo, &wl);
        let max = run.report.rank_error.max();
        assert_eq!(max, 0, "{algo}: strict drain must have zero rank error");
        zero_rows.push(vec![
            algo.name().to_string(),
            run.report.rank_error.count().to_string(),
            max.to_string(),
        ]);
        records.push(BenchRecord {
            name: format!("strict_zero_p16_{}", algo.name()),
            fields: vec![
                ("rank_error_samples", run.report.rank_error.count() as f64),
                ("rank_error_max", max as f64),
            ],
        });
    }
    print_table(
        "Strict algorithms — audited drain rank error (must be 0)",
        &["queue", "drain samples", "rank max"],
        &zero_rows,
    );

    let root = concat!(env!("CARGO_MANIFEST_DIR"), "/../..");
    let path = format!("{root}/BENCH_multiqueue.json");
    if let Err(e) = write_bench_json(&path, "multiqueue", &records) {
        eprintln!("could not write {path}: {e}");
    }
    println!("wrote {path}");
}
