//! SimPerf: wall-clock throughput of the simulator itself, measured as
//! simulated memory transactions per second of host time. Runs the Figure 7
//! workload (16 priorities, FunnelTree plus the other scalable algorithms
//! at the headline P=256 point) on both event-queue implementations:
//!
//! * `wheel` — the indexed event wheel the simulator normally uses;
//! * `naive` — the linear-scan reference list (`--naive-events`), which is
//!   the obviously-correct baseline the wheel is differentially tested
//!   against.
//!
//! Both produce bit-identical simulation results (asserted here), so the
//! ratio of their wall-clock times is a pure scheduler speedup. Results are
//! written to `BENCH_sim.json` for CI artifacts and EXPERIMENTS.md.

use std::time::Instant;

use funnelpq_bench::{
    print_table, standard_workload, trace_enabled, write_bench_json, write_trace_files, BenchRecord,
};
use funnelpq_simqueues::queues::Algorithm;
use funnelpq_simqueues::workload::{
    run_queue_workload, run_queue_workload_traced, RunResult, Workload,
};

struct Measurement {
    name: String,
    wall_s: f64,
    tx_per_sec: f64,
    transactions: u64,
    sim_cycles: u64,
}

fn measure(name: &str, wl: &Workload, reps: usize) -> (Measurement, RunResult) {
    // One warm-up run, then time `reps` full runs.
    let result = run_queue_workload(Algorithm::FunnelTree, wl);
    let t0 = Instant::now();
    for _ in 0..reps {
        let r = run_queue_workload(Algorithm::FunnelTree, wl);
        assert_eq!(r.total_cycles, result.total_cycles, "non-deterministic run");
    }
    let wall_s = t0.elapsed().as_secs_f64() / reps as f64;
    let transactions = result.stats.mem_accesses;
    (
        Measurement {
            name: name.to_string(),
            wall_s,
            tx_per_sec: transactions as f64 / wall_s,
            transactions,
            sim_cycles: result.total_cycles,
        },
        result,
    )
}

fn main() {
    let reps: usize = std::env::var("FUNNELPQ_REPS")
        .ok()
        .and_then(|v| v.parse().ok())
        .filter(|&v: &usize| v > 0)
        .unwrap_or(3);

    let mut measurements: Vec<Measurement> = Vec::new();
    let mut records: Vec<BenchRecord> = Vec::new();

    // Wheel-scheduler throughput across the Figure 7 sweep (P=256 is
    // covered by the head-to-head below).
    for &p in &[64usize, 512, 1024] {
        let wl = standard_workload(p, 16);
        let (m, _) = measure(&format!("wheel_p{p}"), &wl, reps);
        measurements.push(m);
    }

    // Head-to-head at the paper's headline point: identical workload on the
    // wheel and on the naive linear-scan reference queue.
    let wl = standard_workload(256, 16);
    let (wheel, wheel_result) = measure("wheel_p256", &wl, reps);
    let mut naive_wl = wl.clone();
    naive_wl.naive_events = true;
    let (naive, naive_result) = measure("naive_p256", &naive_wl, reps);

    // The two machines must agree bit-for-bit before the speedup means
    // anything.
    assert_eq!(wheel_result.total_cycles, naive_result.total_cycles);
    assert_eq!(wheel_result.all.sum(), naive_result.all.sum());
    assert_eq!(
        wheel_result.stats.mem_accesses,
        naive_result.stats.mem_accesses
    );
    let speedup = naive.wall_s / wheel.wall_s;

    // Tracing differential: attaching a TraceLog must leave the simulation
    // bit-identical (including per-line stats), and untraced runs — the
    // measurements above — pay only a pointer-presence test per
    // transaction, so their throughput stays within noise of the seed.
    let t0 = Instant::now();
    let traced = run_queue_workload_traced(Algorithm::FunnelTree, &wl);
    let traced_wall = t0.elapsed().as_secs_f64();
    assert_eq!(traced.result.total_cycles, wheel_result.total_cycles);
    assert_eq!(traced.result.all.sum(), wheel_result.all.sum());
    assert_eq!(
        traced.result.stats.mem_accesses,
        wheel_result.stats.mem_accesses
    );
    let traced_lines: Vec<_> = traced.result.stats.per_line().collect();
    let untraced_lines: Vec<_> = wheel_result.stats.per_line().collect();
    assert_eq!(traced_lines, untraced_lines, "per-line stats must match");
    let trace_overhead = traced_wall / wheel.wall_s;
    println!(
        "traced run at P=256: {} events, bit-identical results, {:.2}x wall-clock vs untraced",
        traced.events.len(),
        trace_overhead
    );

    let rows: Vec<Vec<String>> = measurements
        .iter()
        .chain([&wheel, &naive])
        .map(|m| {
            vec![
                m.name.clone(),
                m.transactions.to_string(),
                m.sim_cycles.to_string(),
                format!("{:.1}", m.wall_s * 1e3),
                format!("{:.0}", m.tx_per_sec / 1e3),
            ]
        })
        .collect();
    print_table(
        "SimPerf — simulated transactions/sec, Figure 7 workload (16 priorities)",
        &["run", "transactions", "sim cycles", "wall ms", "ktx/s"],
        &rows,
    );
    println!("wheel vs naive event queue at P=256: {speedup:.1}x wall-clock speedup");

    for m in measurements.iter().chain([&wheel, &naive]) {
        records.push(BenchRecord {
            name: m.name.clone(),
            fields: vec![
                ("transactions", m.transactions as f64),
                ("sim_cycles", m.sim_cycles as f64),
                ("wall_s", m.wall_s),
                ("tx_per_sec", m.tx_per_sec),
            ],
        });
    }
    records.push(BenchRecord {
        name: "speedup_wheel_vs_naive_p256".into(),
        fields: vec![("speedup", speedup)],
    });
    records.push(BenchRecord {
        name: "traced_p256".into(),
        fields: vec![
            ("wall_s", traced_wall),
            ("events", traced.events.len() as f64),
            ("overhead_vs_untraced", trace_overhead),
        ],
    });
    if trace_enabled() {
        let (trace_path, series_path) =
            write_trace_files("sim", &traced).expect("write trace artifacts");
        println!("wrote {trace_path} and {series_path}");
    }
    // Benches run with the package directory as cwd; anchor the report at
    // the workspace root where CI picks it up.
    let path = std::env::var("FUNNELPQ_BENCH_JSON")
        .unwrap_or_else(|_| concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_sim.json").into());
    write_bench_json(&path, "sim_throughput", &records).expect("write BENCH_sim.json");
    println!("wrote {path}");
}
