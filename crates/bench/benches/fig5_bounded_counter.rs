//! Figure 5: combining-funnel fetch-and-add vs. the paper's bounded
//! fetch-and-decrement with elimination.
//!
//! Left graph: equal inc/dec mix, 4..256 processors — elimination should
//! make the bounded counter substantially cheaper (up to ~2.5x).
//! Right graph: 256 processors, decrement share swept 0..100% —
//! eliminations become rare at the extremes, where plain fetch-and-add
//! wins because it skips the bounds check / homogeneity constraint.

use funnelpq_bench::{lat, print_table, scaled_ops, trace_enabled, write_counter_trace_artifacts};
use funnelpq_sim::MachineConfig;
use funnelpq_simqueues::funnel::{CounterMode, SimFunnelConfig};
use funnelpq_simqueues::workload::{run_counter_workload, Workload};

fn workload(procs: usize) -> Workload {
    Workload {
        procs,
        num_priorities: 1,
        ops_per_proc: scaled_ops(),
        local_work: 50,
        seed: 0xF165,
        machine: MachineConfig::alewife_like(),
        naive_events: false,
    }
}

/// Funnel parameters for a *dedicated* counter taking every processor's
/// traffic — the maximally hot case. The queue benchmarks use the
/// compromise `SimFunnelConfig::for_procs` (their many funnels each see a
/// fraction of the load); a single shared counter combines best with
/// deeper layers and longer capture waits, which is also the regime the
/// paper's Figure 5 microbenchmark exercises.
fn hot_counter_cfg(procs: usize) -> SimFunnelConfig {
    let levels = if procs <= 4 { 1 } else { 3 };
    SimFunnelConfig {
        widths: (0..levels).map(|d| (procs >> (d + 1)).max(1)).collect(),
        attempts: 3,
        spin_checks: (0..levels).map(|d| 8 + 4 * d as u32).collect(),
        adaption: true,
    }
}

fn main() {
    // Left: latency vs. processors at a 50/50 mix.
    let mut rows = Vec::new();
    for &p in &[4usize, 8, 16, 32, 64, 128, 256] {
        let wl = workload(p);
        let cfg = hot_counter_cfg(p);
        let faa = run_counter_workload(CounterMode::FetchAdd, 50, cfg.clone(), &wl);
        let bfad = run_counter_workload(CounterMode::BOUNDED_AT_ZERO, 50, cfg, &wl);
        rows.push(vec![
            p.to_string(),
            lat(faa.all.mean()),
            lat(bfad.all.mean()),
            format!("{:.2}", faa.all.mean() / bfad.all.mean()),
        ]);
    }
    print_table(
        "Figure 5 (left) — counter latency (cycles), 50% decrements",
        &["P", "Fetch-and-add", "BFaD+elimination", "FaA/BFaD"],
        &rows,
    );

    // Right: latency vs. decrement share at 256 processors.
    let mut rows = Vec::new();
    for &pct in &[0u32, 10, 20, 30, 40, 50, 60, 70, 80, 90, 100] {
        let wl = workload(256);
        let cfg = hot_counter_cfg(256);
        let faa = run_counter_workload(CounterMode::FetchAdd, pct, cfg.clone(), &wl);
        let bfad = run_counter_workload(CounterMode::BOUNDED_AT_ZERO, pct, cfg, &wl);
        rows.push(vec![
            format!("{pct}%"),
            lat(faa.all.mean()),
            lat(bfad.all.mean()),
        ]);
    }
    print_table(
        "Figure 5 (right) — counter latency (cycles) vs. decrement share, 256 processors",
        &["dec%", "Fetch-and-add", "BFaD+elimination"],
        &rows,
    );

    // Exemplar trace: the bounded counter under its hottest balanced mix.
    if trace_enabled() {
        let (trace, series) = write_counter_trace_artifacts(
            "fig5",
            CounterMode::BOUNDED_AT_ZERO,
            50,
            hot_counter_cfg(64),
            &workload(64),
        )
        .expect("write fig5 trace artifacts");
        println!("wrote {trace} and {series}");
    }
}
