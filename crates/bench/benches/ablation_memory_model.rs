//! Sensitivity ablation: do the paper's qualitative results survive
//! changes to the memory-system constants? Runs a miniature Figure-7
//! comparison under three machine configurations (faster/slower network,
//! longer line service). The orderings — SimpleLinear ahead at low P,
//! FunnelTree ahead at high P, SimpleTree collapsing — should hold in all
//! of them; only the absolute cycle counts move.

use funnelpq_bench::{lat, print_table, scalable_algorithms, scaled_ops};
use funnelpq_sim::MachineConfig;
use funnelpq_simqueues::workload::{run_queue_workload, Workload};

fn main() {
    let configs = [
        (
            "alewife-like (net=10, svc=4)",
            MachineConfig::alewife_like(),
        ),
        (
            "fast net (net=4, svc=2)",
            MachineConfig {
                net_latency: 4,
                service: 2,
                line_words: 2,
                nodes: 1,
                remote_ratio: 1,
            },
        ),
        (
            "slow service (net=10, svc=12)",
            MachineConfig {
                net_latency: 10,
                service: 12,
                line_words: 2,
                nodes: 1,
                remote_ratio: 1,
            },
        ),
    ];
    for (label, machine) in configs {
        let mut rows = Vec::new();
        for &p in &[8usize, 64, 256] {
            let wl = Workload {
                procs: p,
                num_priorities: 16,
                ops_per_proc: scaled_ops(),
                local_work: 50,
                seed: 0xAB1A,
                machine,
                naive_events: false,
            };
            let mut row = vec![p.to_string()];
            for algo in scalable_algorithms() {
                let r = run_queue_workload(algo, &wl);
                row.push(lat(r.all.mean()));
            }
            rows.push(row);
        }
        let mut header = vec!["P"];
        header.extend(scalable_algorithms().iter().map(|a| a.name()));
        print_table(
            &format!("Memory-model sensitivity — {label}"),
            &header,
            &rows,
        );
    }
}
