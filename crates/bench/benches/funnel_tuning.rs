//! The paper's preliminary tuning run: "a set of preliminary benchmarks
//! using 256 processors and a queue of two priorities to find the set of
//! funnel parameters (layer width, depth of funnel, delay times, etc.)
//! which minimized latency", used for all funnels afterwards.

use funnelpq_bench::{lat, print_table, standard_workload};
use funnelpq_simqueues::funnel::SimFunnelConfig;
use funnelpq_simqueues::queues::{Algorithm, BuildParams};
use funnelpq_simqueues::workload::run_queue_workload_with;

fn main() {
    let candidates: Vec<(&str, SimFunnelConfig)> = vec![
        (
            "1 layer, w=P/2",
            SimFunnelConfig {
                widths: vec![128],
                attempts: 2,
                spin_checks: vec![3],
                adaption: true,
            },
        ),
        (
            "for_procs(256) (current default)",
            SimFunnelConfig::for_procs(256),
        ),
        (
            "3 layers, medium spins",
            SimFunnelConfig {
                widths: vec![128, 32, 8],
                attempts: 2,
                spin_checks: vec![4, 6, 8],
                adaption: true,
            },
        ),
        (
            "3 layers, medium spins, attempts 3",
            SimFunnelConfig {
                widths: vec![128, 32, 8],
                attempts: 3,
                spin_checks: vec![4, 6, 8],
                adaption: true,
            },
        ),
        (
            "3 layers, short spins, attempts 3",
            SimFunnelConfig {
                widths: vec![128, 32, 8],
                attempts: 3,
                spin_checks: vec![2, 3, 4],
                adaption: true,
            },
        ),
        (
            "2 layers, w=P/4,P/16",
            SimFunnelConfig {
                widths: vec![64, 16],
                attempts: 2,
                spin_checks: vec![3, 5],
                adaption: true,
            },
        ),
        (
            "3 layers, w=P/2,P/8,P/32",
            SimFunnelConfig {
                widths: vec![128, 32, 8],
                attempts: 2,
                spin_checks: vec![3, 5, 7],
                adaption: true,
            },
        ),
        (
            "2 layers, long spins",
            SimFunnelConfig {
                widths: vec![128, 32],
                attempts: 3,
                spin_checks: vec![8, 12],
                adaption: true,
            },
        ),
        (
            "2 layers, no adaption",
            SimFunnelConfig {
                widths: vec![128, 32],
                attempts: 2,
                spin_checks: vec![3, 5],
                adaption: false,
            },
        ),
        (
            "3 layers, long spins",
            SimFunnelConfig {
                widths: vec![128, 32, 8],
                attempts: 3,
                spin_checks: vec![8, 12, 16],
                adaption: true,
            },
        ),
        (
            "4 layers, long spins",
            SimFunnelConfig {
                widths: vec![128, 64, 16, 4],
                attempts: 3,
                spin_checks: vec![8, 10, 12, 16],
                adaption: true,
            },
        ),
        (
            "2 layers, very long spins",
            SimFunnelConfig {
                widths: vec![128, 32],
                attempts: 3,
                spin_checks: vec![16, 24],
                adaption: true,
            },
        ),
        (
            "5 layers, long spins",
            SimFunnelConfig {
                widths: vec![128, 64, 32, 8, 4],
                attempts: 3,
                spin_checks: vec![8, 10, 12, 14, 16],
                adaption: true,
            },
        ),
    ];
    // Score each candidate on three representative scenarios so the chosen
    // global parameter set (used for every funnel, as in the paper) is not
    // over-fitted to one workload.
    let scenarios: [(&str, Algorithm, usize, usize); 4] = [
        ("LF 256p/2n", Algorithm::LinearFunnels, 256, 2),
        ("FT 256p/2n", Algorithm::FunnelTree, 256, 2),
        ("FT 256p/16n", Algorithm::FunnelTree, 256, 16),
        ("FT 16p/16n", Algorithm::FunnelTree, 16, 16),
    ];
    let mut rows = Vec::new();
    for (label, cfg) in candidates {
        let mut row = vec![label.to_string()];
        for &(_, algo, procs, pris) in &scenarios {
            let swl = standard_workload(procs, pris);
            let mut params = BuildParams::new(swl.procs, swl.num_priorities);
            params.capacity = (swl.procs * swl.ops_per_proc).max(64) + 8;
            params.funnel = cfg.clone();
            let r = run_queue_workload_with(algo, &swl, &params);
            row.push(lat(r.all.mean()));
        }
        rows.push(row);
    }
    // Non-funnel references for context (unaffected by the funnel config).
    for (label, algo) in [
        ("(ref) SimpleLinear", Algorithm::SimpleLinear),
        ("(ref) SimpleTree", Algorithm::SimpleTree),
    ] {
        let mut row = vec![label.to_string()];
        for &(_, _, procs, pris) in &scenarios {
            let swl = standard_workload(procs, pris);
            let mut params = BuildParams::new(swl.procs, swl.num_priorities);
            params.capacity = (swl.procs * swl.ops_per_proc).max(64) + 8;
            let r = run_queue_workload_with(algo, &swl, &params);
            row.push(lat(r.all.mean()));
        }
        rows.push(row);
    }
    let mut header = vec!["configuration"];
    header.extend(scenarios.iter().map(|s| s.0));
    print_table(
        "Funnel parameter tuning — mean latency (cycles) per scenario",
        &header,
        &rows,
    );
}
