//! Microbenches of the native (real-thread) implementations, timed with a
//! plain `Instant` harness (the container builds fully offline, so no
//! criterion).
//!
//! The host for the paper-shape experiments is the simulator (`fig*`
//! benches); these benches measure the native library's single-thread
//! operation cost and small-thread-count throughput, which is what a
//! downstream adopter of the `funnelpq` crate would feel.

use std::sync::Arc;
use std::time::Instant;

use funnelpq::{
    BoundedPq, FunnelTreePq, HuntPq, LinearFunnelsPq, SimpleLinearPq, SimpleTreePq, SingleLockPq,
    SkipListPq,
};
use funnelpq_bench::{print_table, scale_percent};

fn queues(n: usize, t: usize) -> Vec<(&'static str, Arc<dyn BoundedPq<u64>>)> {
    vec![
        (
            "SingleLock",
            Arc::new(SingleLockPq::new(n, t)) as Arc<dyn BoundedPq<u64>>,
        ),
        ("HuntEtAl", Arc::new(HuntPq::with_capacity(n, t, 1 << 14))),
        ("SkipList", Arc::new(SkipListPq::new(n, t))),
        ("SimpleLinear", Arc::new(SimpleLinearPq::new(n, t))),
        ("SimpleTree", Arc::new(SimpleTreePq::new(n, t))),
        ("LinearFunnels", Arc::new(LinearFunnelsPq::new(n, t))),
        ("FunnelTree", Arc::new(FunnelTreePq::new(n, t))),
    ]
}

fn bench_single_thread_ops(iters: u64) -> Vec<Vec<String>> {
    let mut rows = Vec::new();
    for (name, q) in queues(16, 1) {
        // Warm up, then time insert+delete pairs.
        let mut k = 0u64;
        for _ in 0..iters / 10 {
            k = k.wrapping_add(7);
            q.insert(0, (k % 16) as usize, k);
            std::hint::black_box(q.delete_min(0));
        }
        let t0 = Instant::now();
        for _ in 0..iters {
            k = k.wrapping_add(7);
            q.insert(0, (k % 16) as usize, k);
            std::hint::black_box(q.delete_min(0));
        }
        let ns_per_pair = t0.elapsed().as_nanos() as f64 / iters as f64;
        rows.push(vec![name.to_string(), format!("{ns_per_pair:.0}")]);
    }
    rows
}

fn bench_two_thread_mixed(reps: u64) -> Vec<Vec<String>> {
    // With one core this measures interleaved (not parallel) behaviour —
    // still useful as a lock-convoy smoke test.
    const OPS: u64 = 200;
    let mut rows = Vec::new();
    for (name, q) in queues(16, 2) {
        let t0 = Instant::now();
        for _ in 0..reps {
            let q2 = Arc::clone(&q);
            let h = std::thread::spawn(move || {
                for i in 0..OPS {
                    q2.insert(1, (i % 16) as usize, i);
                    std::hint::black_box(q2.delete_min(1));
                }
            });
            for i in 0..OPS {
                q.insert(0, (i % 16) as usize, i);
                std::hint::black_box(q.delete_min(0));
            }
            h.join().unwrap();
        }
        let ns_per_pair = t0.elapsed().as_nanos() as f64 / (reps * OPS * 2) as f64;
        rows.push(vec![name.to_string(), format!("{ns_per_pair:.0}")]);
    }
    rows
}

fn main() {
    let iters = (100_000u64 * scale_percent() as u64 / 100).max(1_000);
    let reps = (30u64 * scale_percent() as u64 / 100).max(3);
    print_table(
        "Native single-thread insert+delete pair cost",
        &["queue", "ns/pair"],
        &bench_single_thread_ops(iters),
    );
    print_table(
        "Native two-thread mixed insert+delete pair cost",
        &["queue", "ns/pair"],
        &bench_two_thread_mixed(reps),
    );
}
