//! Criterion microbenches of the native (real-thread) implementations.
//!
//! The host for the paper-shape experiments is the simulator (`fig*`
//! benches); these criterion benches measure the native library's
//! single-thread operation cost and small-thread-count throughput, which is
//! what a downstream adopter of the `funnelpq` crate would feel.

use std::sync::Arc;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use funnelpq::{
    BoundedPq, FunnelTreePq, HuntPq, LinearFunnelsPq, SimpleLinearPq, SimpleTreePq, SingleLockPq,
    SkipListPq,
};

fn queues(n: usize, t: usize) -> Vec<(&'static str, Arc<dyn BoundedPq<u64>>)> {
    vec![
        (
            "SingleLock",
            Arc::new(SingleLockPq::new(n, t)) as Arc<dyn BoundedPq<u64>>,
        ),
        ("HuntEtAl", Arc::new(HuntPq::with_capacity(n, t, 1 << 14))),
        ("SkipList", Arc::new(SkipListPq::new(n, t))),
        ("SimpleLinear", Arc::new(SimpleLinearPq::new(n, t))),
        ("SimpleTree", Arc::new(SimpleTreePq::new(n, t))),
        ("LinearFunnels", Arc::new(LinearFunnelsPq::new(n, t))),
        ("FunnelTree", Arc::new(FunnelTreePq::new(n, t))),
    ]
}

fn bench_single_thread_ops(c: &mut Criterion) {
    let mut group = c.benchmark_group("single_thread_insert_delete");
    for (name, q) in queues(16, 1) {
        group.bench_with_input(BenchmarkId::from_parameter(name), &q, |b, q| {
            let mut k = 0u64;
            b.iter(|| {
                k = k.wrapping_add(7);
                q.insert(0, (k % 16) as usize, k);
                std::hint::black_box(q.delete_min(0));
            });
        });
    }
    group.finish();
}

fn bench_two_thread_mixed(c: &mut Criterion) {
    // With one core this measures interleaved (not parallel) behaviour —
    // still useful as a lock-convoy smoke test.
    let mut group = c.benchmark_group("two_thread_mixed");
    group.sample_size(10);
    for (name, q) in queues(16, 2) {
        group.bench_with_input(BenchmarkId::from_parameter(name), &q, |b, q| {
            b.iter(|| {
                let q2 = Arc::clone(q);
                let h = std::thread::spawn(move || {
                    for i in 0..200u64 {
                        q2.insert(1, (i % 16) as usize, i);
                        std::hint::black_box(q2.delete_min(1));
                    }
                });
                for i in 0..200u64 {
                    q.insert(0, (i % 16) as usize, i);
                    std::hint::black_box(q.delete_min(0));
                }
                h.join().unwrap();
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_single_thread_ops, bench_two_thread_mixed);
criterion_main!(benches);
