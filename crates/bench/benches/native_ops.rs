//! Microbenches of the native (real-thread) implementations, timed with a
//! plain `Instant` harness (the container builds fully offline, so no
//! criterion).
//!
//! The host for the paper-shape experiments is the simulator (`fig*`
//! benches); these benches measure the native library's single-thread
//! operation cost and small-thread-count throughput, which is what a
//! downstream adopter of the `funnelpq` crate would feel.
//!
//! Two recorder configurations run side by side: the default
//! `NoopRecorder` (which must monomorphize away — its column is the
//! library's true cost) and an attached `AtomicRecorder`, whose per-run
//! `MetricsSnapshot`s are written to `BENCH_native_metrics.json`. The
//! noop-vs-atomic delta is the observable price of metrics; the noop
//! column itself is the number to compare against pre-observability
//! baselines.

use std::sync::Arc;
use std::time::Instant;

use funnelpq::obs::AtomicRecorder;
use funnelpq::{
    Algorithm, BoundedPq, FunnelConfig, FunnelTreeConfig, HuntConfig, LinearFunnelsConfig,
    PqBuilder, PqConfig,
};
use funnelpq_bench::{print_table, scale_percent, write_bench_json, BenchRecord};

fn builder(a: Algorithm, n: usize, t: usize) -> PqBuilder {
    let cfg = match PqConfig::for_algorithm(a).expect("natively buildable") {
        PqConfig::HuntEtAl(_) => PqConfig::HuntEtAl(HuntConfig { capacity: 1 << 14 }),
        cfg => cfg,
    };
    PqBuilder::from_config(cfg, n, t)
}

/// Times `iters` insert+delete_min pairs on thread id 0 (with a warmup of
/// a tenth); returns ns per pair.
fn time_pairs(q: &dyn BoundedPq<u64>, iters: u64) -> f64 {
    let mut k = 0u64;
    for _ in 0..iters / 10 {
        k = k.wrapping_add(7);
        q.insert(0, (k % 16) as usize, k);
        std::hint::black_box(q.delete_min(0));
    }
    let t0 = Instant::now();
    for _ in 0..iters {
        k = k.wrapping_add(7);
        q.insert(0, (k % 16) as usize, k);
        std::hint::black_box(q.delete_min(0));
    }
    t0.elapsed().as_nanos() as f64 / iters as f64
}

struct SingleThreadRow {
    algorithm: Algorithm,
    noop_ns: f64,
    atomic_ns: f64,
    snapshot_json: String,
}

fn bench_single_thread_ops(iters: u64) -> Vec<SingleThreadRow> {
    let mut rows = Vec::new();
    for a in Algorithm::ALL {
        let q = builder(a, 16, 1).build::<u64>();
        let noop_ns = time_pairs(q.as_ref(), iters);

        let rec = Arc::new(AtomicRecorder::new());
        let q = builder(a, 16, 1).recorder(Arc::clone(&rec)).build::<u64>();
        let atomic_ns = time_pairs(q.as_ref(), iters);

        rows.push(SingleThreadRow {
            algorithm: a,
            noop_ns,
            atomic_ns,
            snapshot_json: rec.snapshot().to_json(a.name()),
        });
    }
    rows
}

/// Times `rounds` iterations of `insert_batch(k)` + `delete_min_batch(k)`
/// (with a warmup of a tenth); returns ns per item moved.
fn time_batch_rounds(q: &dyn BoundedPq<u64>, k: usize, rounds: u64) -> f64 {
    let mut x = 0u64;
    let mut out = Vec::with_capacity(k);
    let mut round = |timing: bool| {
        let mut batch = Vec::with_capacity(k);
        for _ in 0..k {
            x = x.wrapping_add(7);
            batch.push(((x % 16) as usize, x));
        }
        q.insert_batch(0, batch).expect("pris in range");
        out.clear();
        if timing {
            std::hint::black_box(q.delete_min_batch(0, k, &mut out));
        } else {
            q.delete_min_batch(0, k, &mut out);
        }
    };
    for _ in 0..rounds / 10 {
        round(false);
    }
    let t0 = Instant::now();
    for _ in 0..rounds {
        round(true);
    }
    t0.elapsed().as_nanos() as f64 / (rounds * 2 * k as u64) as f64
}

/// Noop/atomic A/B over the batched entry points of the four queues with
/// native batch overrides: the noop column is the proof that the batch
/// instrumentation ([`funnelpq::obs::Recorder::record_batch`]) still
/// monomorphizes away when unobserved.
fn bench_batch_ab(iters: u64) -> Vec<(Algorithm, f64, f64)> {
    const K: usize = 8;
    let rounds = (iters / K as u64).max(100);
    [
        Algorithm::SingleLock,
        Algorithm::HuntEtAl,
        Algorithm::SkipList,
        Algorithm::MultiQueue,
    ]
    .into_iter()
    .map(|a| {
        let q = builder(a, 16, 1).build::<u64>();
        let noop_ns = time_batch_rounds(q.as_ref(), K, rounds);

        let rec = Arc::new(AtomicRecorder::new());
        let q = builder(a, 16, 1).recorder(Arc::clone(&rec)).build::<u64>();
        let atomic_ns = time_batch_rounds(q.as_ref(), K, rounds);
        let snap = rec.snapshot();
        assert!(
            snap.batch.count > 0,
            "{}: instrumented batch run recorded no BatchOp",
            a.name()
        );
        assert!(
            (snap.batch.mean_items() - K as f64).abs() < 1.0,
            "{}: batch-size histogram disagrees with k={K}",
            a.name()
        );
        (a, noop_ns, atomic_ns)
    })
    .collect()
}

/// Two threads hammering insert+delete pairs; returns ns per pair. With
/// one core this measures interleaved (not parallel) behaviour — still
/// useful as a lock-convoy smoke test.
fn two_thread_pairs(q: Arc<dyn BoundedPq<u64>>, reps: u64) -> f64 {
    const OPS: u64 = 200;
    let t0 = Instant::now();
    for _ in 0..reps {
        let q2 = Arc::clone(&q);
        let h = std::thread::spawn(move || {
            for i in 0..OPS {
                q2.insert(1, (i % 16) as usize, i);
                std::hint::black_box(q2.delete_min(1));
            }
        });
        for i in 0..OPS {
            q.insert(0, (i % 16) as usize, i);
            std::hint::black_box(q.delete_min(0));
        }
        h.join().unwrap();
    }
    t0.elapsed().as_nanos() as f64 / (reps * OPS * 2) as f64
}

fn bench_two_thread_mixed(reps: u64) -> Vec<(Algorithm, f64)> {
    Algorithm::ALL
        .into_iter()
        .map(|a| {
            let q: Arc<dyn BoundedPq<u64>> = Arc::from(builder(a, 16, 2).build::<u64>());
            (a, two_thread_pairs(q, reps))
        })
        .collect()
}

/// A/B of the collision-slot cache padding (`FunnelConfig::pad_slots`) on
/// the two funnel algorithms, under the contended two-thread load where
/// false sharing between adjacent slots is visible at all.
fn bench_funnel_pad_ab(reps: u64) -> Vec<(Algorithm, f64, f64)> {
    [Algorithm::LinearFunnels, Algorithm::FunnelTree]
        .into_iter()
        .map(|a| {
            let run = |pad: bool| {
                let mut fc = FunnelConfig::for_threads(2);
                fc.pad_slots = pad;
                let cfg = match a {
                    Algorithm::LinearFunnels => {
                        PqConfig::LinearFunnels(LinearFunnelsConfig { funnel: Some(fc) })
                    }
                    _ => PqConfig::FunnelTree(FunnelTreeConfig {
                        funnel: Some(fc),
                        ..Default::default()
                    }),
                };
                let q: Arc<dyn BoundedPq<u64>> =
                    Arc::from(PqBuilder::from_config(cfg, 16, 2).build::<u64>());
                two_thread_pairs(q, reps)
            };
            (a, run(true), run(false))
        })
        .collect()
}

fn main() {
    let iters = (100_000u64 * scale_percent() as u64 / 100).max(1_000);
    let reps = (30u64 * scale_percent() as u64 / 100).max(3);

    let single = bench_single_thread_ops(iters);
    print_table(
        "Native single-thread insert+delete pair cost",
        &["queue", "ns/pair (noop)", "ns/pair (metrics)", "overhead %"],
        &single
            .iter()
            .map(|r| {
                vec![
                    r.algorithm.name().to_string(),
                    format!("{:.0}", r.noop_ns),
                    format!("{:.0}", r.atomic_ns),
                    format!("{:+.1}", (r.atomic_ns / r.noop_ns - 1.0) * 100.0),
                ]
            })
            .collect::<Vec<_>>(),
    );

    let two = bench_two_thread_mixed(reps);
    print_table(
        "Native two-thread mixed insert+delete pair cost",
        &["queue", "ns/pair"],
        &two.iter()
            .map(|(a, ns)| vec![a.name().to_string(), format!("{ns:.0}")])
            .collect::<Vec<_>>(),
    );

    let batch_ab = bench_batch_ab(iters);
    print_table(
        "Batched entry points: noop vs metrics recorder (k=8, ns per item)",
        &["queue", "ns/item (noop)", "ns/item (metrics)", "overhead %"],
        &batch_ab
            .iter()
            .map(|(a, noop, atomic)| {
                vec![
                    a.name().to_string(),
                    format!("{noop:.0}"),
                    format!("{atomic:.0}"),
                    format!("{:+.1}", (atomic / noop - 1.0) * 100.0),
                ]
            })
            .collect::<Vec<_>>(),
    );

    let pad_ab = bench_funnel_pad_ab(reps);
    print_table(
        "Funnel collision-slot padding A/B (two threads)",
        &["queue", "ns/pair (padded)", "ns/pair (compact)", "delta %"],
        &pad_ab
            .iter()
            .map(|(a, padded, compact)| {
                vec![
                    a.name().to_string(),
                    format!("{padded:.0}"),
                    format!("{compact:.0}"),
                    format!("{:+.1}", (compact / padded - 1.0) * 100.0),
                ]
            })
            .collect::<Vec<_>>(),
    );

    // Machine-readable report: per-algorithm cost with and without metrics.
    let mut records: Vec<BenchRecord> = single
        .iter()
        .map(|r| {
            let two_ns = two
                .iter()
                .find(|(a, _)| *a == r.algorithm)
                .map(|(_, ns)| *ns)
                .unwrap_or(f64::NAN);
            BenchRecord {
                name: r.algorithm.name().to_string(),
                fields: vec![
                    ("noop_ns_per_pair", r.noop_ns),
                    ("atomic_ns_per_pair", r.atomic_ns),
                    (
                        "atomic_overhead_percent",
                        (r.atomic_ns / r.noop_ns - 1.0) * 100.0,
                    ),
                    ("two_thread_ns_per_pair", two_ns),
                ],
            }
        })
        .collect();
    records.extend(batch_ab.iter().map(|(a, noop, atomic)| BenchRecord {
        name: format!("{}_batch_ab", a.name()),
        fields: vec![
            ("noop_batch_ns_per_item", *noop),
            ("atomic_batch_ns_per_item", *atomic),
            ("atomic_overhead_percent", (atomic / noop - 1.0) * 100.0),
        ],
    }));
    // The slot-padding A/B rides along in the same report: `compact` is
    // the pre-padding dense layout, so `pad_delta_percent` > 0 is the cost
    // false sharing was adding.
    records.extend(pad_ab.iter().map(|(a, padded, compact)| BenchRecord {
        name: format!("{}_pad_ab", a.name()),
        fields: vec![
            ("padded_ns_per_pair", *padded),
            ("compact_ns_per_pair", *compact),
            ("pad_delta_percent", (compact / padded - 1.0) * 100.0),
        ],
    }));
    // Benches run with the package directory as cwd; anchor the reports at
    // the workspace root where CI picks them up.
    let root = concat!(env!("CARGO_MANIFEST_DIR"), "/../..");
    let ops_path = format!("{root}/BENCH_native_ops.json");
    if let Err(e) = write_bench_json(&ops_path, "native_ops", &records) {
        eprintln!("could not write {ops_path}: {e}");
    }

    // Full metrics snapshots (event counters + latency histograms) from the
    // AtomicRecorder runs, one object per algorithm.
    let mut out = format!(
        "{{\n  \"schema_version\": {},\n  \"benchmark\": \"native_metrics\",\n  \"snapshots\": [\n",
        funnelpq_util::json::SCHEMA_VERSION,
    );
    for (i, r) in single.iter().enumerate() {
        out.push_str(&r.snapshot_json);
        out.push_str(if i + 1 == single.len() { "\n" } else { ",\n" });
    }
    out.push_str("  ]\n}\n");
    let metrics_path = format!("{root}/BENCH_native_metrics.json");
    if let Err(e) = std::fs::write(&metrics_path, out) {
        eprintln!("could not write {metrics_path}: {e}");
    }
    println!("wrote {ops_path} and {metrics_path}");
}
