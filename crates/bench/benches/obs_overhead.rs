//! Tracing-overhead A/B: the same native mixed insert/delete-min workload
//! run three ways per algorithm —
//!
//! 1. **noop** — default [`NoopRecorder`]: instrumentation monomorphizes
//!    away; this is the disabled path users get by default;
//! 2. **traced** — a [`TracingRecorder`] attached: atomic counters,
//!    latency histograms, *and* per-thread ring-buffer event records;
//! 3. **noop again** — the disabled path re-measured, bracketing the run
//!    so host noise is quantified by the same binary that measured it.
//!
//! The report's gate (asserted by CI) is that the two noop runs agree
//! within noise: the tracing subsystem must cost nothing when it is not
//! attached. The traced column is informational — it prices what turning
//! the flight recorder on costs.
//!
//! The gate columns are measured **single-threaded**: zero-cost-when-
//! disabled is a per-operation instrumentation property, and contended
//! multi-thread runs on shared CI runners are bimodal (lock-convoy
//! scheduling luck swings them several hundred percent — far beyond any
//! assertable threshold). The three variants are also interleaved within
//! every rep so a host-noise episode lands on all of them.
//!
//! Writes `BENCH_obs_overhead.json`; with `FUNNELPQ_TRACE=1` also runs
//! one `TRACE_THREADS`-way traced workload and drains its flight recorder
//! into `TRACE_native.json` (Chrome Trace Format — the same Perfetto UI
//! the simulator traces load into), so the exemplar timeline shows real
//! cross-thread lock waits.

use std::sync::{Arc, Barrier};
use std::time::Instant;

use funnelpq::trace::TracingRecorder;
use funnelpq::{Algorithm, BoundedPq, PqBuilder};
use funnelpq_bench::{
    print_table, scale_percent, trace_dir, trace_enabled, write_bench_json, BenchRecord,
};
use funnelpq_util::XorShift64Star;

const TRACE_THREADS: usize = 4;
const PRIS: usize = 64;
const PREFILL: usize = 1024;
const REPS: usize = 5;

// Short runs measure startup transients, not the queue: even the FAST
// profile keeps enough ops for the steady state to dominate.
fn scaled_ops() -> usize {
    (200_000 * scale_percent() / 100).max(50_000)
}

/// One timed run: `threads` threads each alternate insert and delete-min
/// for `ops` operations (`threads == 1` runs inline — no spawn, no
/// barrier). Returns nanoseconds per operation.
fn run_once(q: Arc<dyn BoundedPq<u64>>, threads: usize, ops: usize) -> f64 {
    for i in 0..PREFILL {
        q.insert(0, i % PRIS, i as u64);
    }
    let elapsed = if threads == 1 {
        let mut rng = XorShift64Star::new(0xD15EA5E);
        let start = Instant::now();
        for i in 0..ops {
            if i % 2 == 0 {
                q.insert(0, rng.below(PRIS as u64) as usize, i as u64);
            } else {
                let _ = q.delete_min(0);
            }
        }
        start.elapsed().as_nanos() as f64
    } else {
        let barrier = Arc::new(Barrier::new(threads + 1));
        let handles: Vec<_> = (0..threads)
            .map(|tid| {
                let q = Arc::clone(&q);
                let barrier = Arc::clone(&barrier);
                std::thread::spawn(move || {
                    let mut rng = XorShift64Star::new(0xD15EA5E ^ ((tid as u64) << 32));
                    barrier.wait();
                    for i in 0..ops {
                        if i % 2 == 0 {
                            q.insert(tid, rng.below(PRIS as u64) as usize, i as u64);
                        } else {
                            let _ = q.delete_min(tid);
                        }
                    }
                })
            })
            .collect();
        barrier.wait();
        let start = Instant::now();
        for h in handles {
            h.join().unwrap();
        }
        start.elapsed().as_nanos() as f64
    };
    while q.delete_min(0).is_some() {}
    elapsed / (threads * ops) as f64
}

fn main() {
    let ops = scaled_ops();
    let algos = [
        Algorithm::SingleLock,
        Algorithm::FunnelTree,
        Algorithm::MultiQueue,
    ];
    let mut records = vec![BenchRecord {
        name: "meta".into(),
        fields: vec![
            ("threads", 1.0),
            ("ops_per_thread", ops as f64),
            ("reps", REPS as f64),
        ],
    }];
    let mut rows = Vec::new();
    let mut exemplar: Option<String> = None;

    for algo in algos {
        // Interleave the three variants within every rep: a host-noise
        // episode (CI neighbor, frequency step) then lands on all three,
        // so the min-of-reps columns stay comparable. noop_a runs before
        // the traced queue in each rep and noop_b after, preserving the
        // bracketing.
        let build_noop = |threads: usize| {
            Arc::from(PqBuilder::new(algo, PRIS, threads).build::<u64>()) as Arc<dyn BoundedPq<u64>>
        };
        let build_traced = |threads: usize, rec: &Arc<TracingRecorder>| {
            Arc::from(
                PqBuilder::new(algo, PRIS, threads)
                    .recorder(Arc::clone(rec))
                    .build::<u64>(),
            ) as Arc<dyn BoundedPq<u64>>
        };
        let mut noop_a = f64::INFINITY;
        let mut traced = f64::INFINITY;
        let mut noop_b = f64::INFINITY;
        for _ in 0..REPS {
            noop_a = noop_a.min(run_once(build_noop(1), 1, ops));
            let rec = Arc::new(TracingRecorder::new());
            traced = traced.min(run_once(build_traced(1, &rec), 1, ops));
            noop_b = noop_b.min(run_once(build_noop(1), 1, ops));
        }
        // The Perfetto exemplar comes from a separate contended run so the
        // timeline shows cross-thread lock waits, not a single lane.
        if trace_enabled() && exemplar.is_none() {
            let rec = Arc::new(TracingRecorder::new());
            run_once(build_traced(TRACE_THREADS, &rec), TRACE_THREADS, ops);
            exemplar = Some(rec.chrome_trace());
        }

        // The gate: both disabled runs must agree. Noise is their relative
        // spread; the traced overhead is reported against the faster one.
        let noop = noop_a.min(noop_b);
        let disabled_delta_pct = 100.0 * (noop_a - noop_b).abs() / noop;
        let traced_overhead_pct = 100.0 * (traced - noop) / noop;
        records.push(BenchRecord {
            name: algo.name().to_string(),
            fields: vec![
                ("noop_ns_per_op", noop_a),
                ("noop_rerun_ns_per_op", noop_b),
                ("traced_ns_per_op", traced),
                ("disabled_delta_pct", disabled_delta_pct),
                ("traced_overhead_pct", traced_overhead_pct),
            ],
        });
        rows.push(vec![
            algo.name().to_string(),
            format!("{noop_a:.0}"),
            format!("{noop_b:.0}"),
            format!("{traced:.0}"),
            format!("{disabled_delta_pct:.1}%"),
            format!("{traced_overhead_pct:.1}%"),
        ]);
    }

    print_table(
        &format!("Tracing overhead (single-threaded, {ops} ops, min of {REPS})"),
        &[
            "algorithm",
            "noop ns/op",
            "noop' ns/op",
            "traced ns/op",
            "disabled Δ",
            "traced Δ",
        ],
        &rows,
    );

    let path = format!("{}/BENCH_obs_overhead.json", trace_dir());
    write_bench_json(&path, "obs_overhead", &records).expect("write bench json");
    println!("wrote {path}");
    if let Some(trace) = exemplar {
        let tp = format!("{}/TRACE_native.json", trace_dir());
        std::fs::write(&tp, trace).expect("write native trace");
        println!("wrote {tp}");
    }
}
