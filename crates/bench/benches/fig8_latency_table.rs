//! Figure 8 (the paper's table): insert / delete-min latency split for the
//! four scalable implementations, N ∈ {16, 128} priorities and
//! P ∈ {16, 64, 256} processors. Latencies reported in thousands of
//! cycles, as in the paper.
//!
//! Expected shape: for the tree methods insert is cheaper than delete-min
//! (half the counter updates on average); SimpleLinear's delete cost grows
//! with N at low P and its contention falls with N at high P; funnel
//! methods pay overhead for more funnels as N grows but stay flat in P.
//!
//! Beyond the paper's means, the table reports p50/p99 over all accesses
//! (log2-histogram upper bounds) — the tail is where contention collapse
//! shows long before the mean moves.

use funnelpq_bench::{
    print_table, scalable_algorithms, standard_workload, trace_enabled, write_trace_artifacts,
};
use funnelpq_simqueues::queues::Algorithm;
use funnelpq_simqueues::workload::run_queue_workload;

/// Formats a cycle count in thousands, like the paper's table.
fn kcyc(v: f64) -> String {
    format!("{:.1}", v / 1000.0)
}

fn main() {
    let combos = [
        (16usize, 16usize),
        (16, 128),
        (64, 16),
        (64, 128),
        (256, 16),
        (256, 128),
    ];
    let mut rows = Vec::new();
    for &(p, n) in &combos {
        let wl = standard_workload(p, n);
        let mut row = vec![p.to_string(), n.to_string()];
        for algo in scalable_algorithms() {
            let r = run_queue_workload(algo, &wl);
            row.push(kcyc(r.insert.mean()));
            row.push(kcyc(r.delete.mean()));
            row.push(kcyc(r.all.mean()));
            row.push(kcyc(r.all.p50() as f64));
            row.push(kcyc(r.all.p99() as f64));
        }
        rows.push(row);
    }
    let mut header: Vec<String> = vec!["P".into(), "N".into()];
    for algo in scalable_algorithms() {
        let n = algo.name();
        header.push(format!("{n} Ins."));
        header.push(format!("{n} Del."));
        header.push(format!("{n} All"));
        header.push(format!("{n} p50"));
        header.push(format!("{n} p99"));
    }
    let header_refs: Vec<&str> = header.iter().map(|s| s.as_str()).collect();
    print_table(
        "Figure 8 — insert / delete-min latency (thousands of cycles; p50/p99 are histogram upper bounds)",
        &header_refs,
        &rows,
    );

    // Exemplar trace: the heaviest cell of the table.
    if trace_enabled() {
        let wl = standard_workload(256, 128);
        let (trace, series) = write_trace_artifacts("fig8", Algorithm::FunnelTree, &wl)
            .expect("write fig8 trace artifacts");
        println!("wrote {trace} and {series}");
    }
}
