//! Figure 8 (the paper's table): insert / delete-min latency split for the
//! four scalable implementations, N ∈ {16, 128} priorities and
//! P ∈ {16, 64, 256} processors. Latencies reported in thousands of
//! cycles, as in the paper.
//!
//! Expected shape: for the tree methods insert is cheaper than delete-min
//! (half the counter updates on average); SimpleLinear's delete cost grows
//! with N at low P and its contention falls with N at high P; funnel
//! methods pay overhead for more funnels as N grows but stay flat in P.

use funnelpq_bench::{print_table, scalable_algorithms, standard_workload};
use funnelpq_simqueues::workload::run_queue_workload;

fn main() {
    let combos = [
        (16usize, 16usize),
        (16, 128),
        (64, 16),
        (64, 128),
        (256, 16),
        (256, 128),
    ];
    let mut rows = Vec::new();
    for &(p, n) in &combos {
        let wl = standard_workload(p, n);
        let mut row = vec![p.to_string(), n.to_string()];
        for algo in scalable_algorithms() {
            let r = run_queue_workload(algo, &wl);
            row.push(format!("{:.1}", r.insert.mean() / 1000.0));
            row.push(format!("{:.1}", r.delete.mean() / 1000.0));
            row.push(format!("{:.1}", r.all.mean() / 1000.0));
        }
        rows.push(row);
    }
    let mut header: Vec<String> = vec!["P".into(), "N".into()];
    for algo in scalable_algorithms() {
        let n = algo.name();
        header.push(format!("{n} Ins."));
        header.push(format!("{n} Del."));
        header.push(format!("{n} All"));
    }
    let header_refs: Vec<&str> = header.iter().map(|s| s.as_str()).collect();
    print_table(
        "Figure 8 — insert / delete-min latency (thousands of cycles)",
        &header_refs,
        &rows,
    );
}
