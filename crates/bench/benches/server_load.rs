//! Closed-loop load generator for the `funnelpq-server` scheduler: bursty
//! arrivals with hot-tenant skew, swept across strict backends
//! (SingleLock, FunnelTree) and the relaxed MultiQueue at two relaxation
//! settings. Headline: **deadline-miss rate as a function of the
//! rank-error bound** (heap count, 0 for strict backends).
//!
//! Misses are evaluated on the server's virtual service clock (dispatch
//! slots, paced at `service_ns` per job — see `docs/SERVER.md`), so the
//! strict rows are *guaranteed* zero under this no-overload closed loop:
//! every job gets `CAPACITY + MARGIN` slots of slack, and a strict backend
//! can delay a job by at most the in-flight population (≤ `CAPACITY`)
//! plus its same-band cohort (≤ band width ≪ `MARGIN`). The relaxed
//! MultiQueue adds rank error on top — a job parked in a heap the
//! two-choice draw keeps missing is overtaken without bound — which is
//! exactly what the miss rate then measures. CI's `server-smoke` job
//! asserts the strict-zero / relaxed-split shape from the JSON.

use std::sync::Arc;
use std::time::{Duration, Instant};

use funnelpq::obs::{AtomicRecorder, CounterEvent};
use funnelpq::{MultiQueueConfig, PqConfig};
use funnelpq_bench::{print_table, scale_percent, write_bench_json, BenchRecord};
use funnelpq_server::{
    Deadline, JobSpec, OverloadConfig, RetryPolicy, Scheduler, ServerConfig, ServerError, TenantId,
};
use funnelpq_util::XorShift64Star;

const SHARDS: usize = 4;
const TENANTS: u64 = 8;
const CLIENTS: usize = 4;
const BANDS: usize = 8192;
/// Nominal per-job service time: the dispatcher pacing quantum. Coarse on
/// purpose — one slot must dwarf an OS timeslice hiccup, so that a client
/// preempted mid-insert on a small (even single-core) machine loses a
/// couple of slots, not dozens, keeping the strict zero-miss guarantee
/// honest on any host.
const SERVICE_NS: u64 = 500_000;
/// Global in-flight capacity.
const CAPACITY: usize = 128;
const QUOTA: usize = 16;
/// Tenants are pinned round-robin onto shards, so one shard's backlog is
/// capped by the quotas of its own tenants — much tighter than the global
/// capacity, which lets the deadline slack be tight enough for rank error
/// to matter while strict backends still cannot miss.
const PER_SHARD_BOUND: u64 = (TENANTS / SHARDS as u64) * QUOTA as u64;
/// The run's deadline geometry, derived from the wall duration: every job
/// gets the same deadline offset — enough slack that a strict backend
/// cannot miss, tight enough that MultiQueue rank error shows up as
/// misses.
struct Geometry {
    horizon_ns: u64,
    offset_ns: u64,
}

fn geometry(duration: Duration) -> Geometry {
    // The horizon must cover every deadline the run can stamp (including
    // the last periodic job's final re-arm).
    let horizon_ns = duration.as_nanos() as u64 + 1_000_000_000;
    // Strict worst-case delay on one shard: its pinned tenants' full
    // quota backlog plus the same-band dispatch-order cohort (one band's
    // width in slots). The margin keeps multiples of both.
    let band_slots = horizon_ns / (BANDS as u64 * SERVICE_NS);
    let margin = 48 + 2 * band_slots;
    Geometry {
        horizon_ns,
        offset_ns: (PER_SHARD_BOUND + margin) * SERVICE_NS,
    }
}

struct Backend {
    label: &'static str,
    config: PqConfig,
    /// Upper bound on delete-min rank error: 0 for the strict classes,
    /// the heap count (`factor × threads`) for the MultiQueue.
    rank_error_bound: usize,
}

fn backends() -> Vec<Backend> {
    let threads = CLIENTS + 1; // clients + the dispatcher
    let mq = |factor: usize, stickiness: u32| {
        PqConfig::MultiQueue(MultiQueueConfig {
            factor,
            stickiness,
            ..MultiQueueConfig::default()
        })
    };
    vec![
        Backend {
            label: "SingleLock",
            config: PqConfig::SingleLock,
            rank_error_bound: 0,
        },
        Backend {
            label: "FunnelTree",
            config: PqConfig::for_algorithm(funnelpq::Algorithm::FunnelTree).unwrap(),
            rank_error_bound: 0,
        },
        Backend {
            label: "MultiQueue_f2_s8",
            config: mq(2, 8),
            rank_error_bound: 2 * threads,
        },
        Backend {
            label: "MultiQueue_f4_s32",
            config: mq(4, 32),
            rank_error_bound: 4 * threads,
        },
        Backend {
            label: "MultiQueue_f8_s64",
            config: mq(8, 64),
            rank_error_bound: 8 * threads,
        },
    ]
}

fn run_backend(b: &Backend, duration: Duration, geo: &Geometry) -> BenchRecord {
    let recorder = Arc::new(AtomicRecorder::new());
    let offset_ns = geo.offset_ns;
    let cfg = ServerConfig {
        shards: SHARDS,
        tenants: TENANTS as usize,
        clients: CLIENTS,
        bands: BANDS,
        horizon_ns: geo.horizon_ns,
        backend: b.config.clone(),
        drain_batch: 8,
        global_capacity: CAPACITY,
        tenant_quota: QUOTA,
        service_ns: SERVICE_NS,
        record_dispatches: false,
        // Round-robin pins: shard s serves tenants {s, s + SHARDS}, so its
        // backlog is bounded by their quotas (PER_SHARD_BOUND).
        affinity: (0..TENANTS as u32)
            .map(|t| (TenantId(t), t as usize % SHARDS))
            .collect(),
        ..ServerConfig::default()
    };
    let s = Arc::new(Scheduler::with_recorder(cfg, Arc::clone(&recorder)).unwrap());
    s.start();

    let until = Instant::now() + duration;
    let clients: Vec<_> = (0..CLIENTS)
        .map(|client| {
            let s = Arc::clone(&s);
            std::thread::spawn(move || {
                let mut rng = XorShift64Star::new(0xBEEF ^ ((client as u64) << 40));
                let mut retry = RetryPolicy::new(2_000, 500_000, 0xACE ^ ((client as u64) << 16));
                let mut sent = 0u64;
                'run: while Instant::now() < until {
                    // Bursty arrivals: a burst of submits, then a pause.
                    let burst = 8 + rng.below(24);
                    for _ in 0..burst {
                        // Hot-tenant skew: ~30% of traffic on tenant 0.
                        let tenant = if rng.below(100) < 30 {
                            TenantId(0)
                        } else {
                            TenantId(rng.below(TENANTS) as u32)
                        };
                        // Closed loop: quota/capacity refusals back-pressure
                        // the client, which retries. The relative deadline
                        // resolves at admission, so every job starts with
                        // its full slack.
                        let deadline = Deadline::In(offset_ns);
                        let spec = if sent.is_multiple_of(16) {
                            JobSpec::periodic(tenant, deadline, sent, offset_ns, 3)
                        } else {
                            JobSpec::once(tenant, deadline, sent)
                        };
                        loop {
                            match s.submit(client, spec) {
                                Ok(_) => {
                                    retry.note_ok();
                                    break;
                                }
                                Err(err @ ServerError::Admit(_)) => {
                                    if Instant::now() >= until {
                                        break 'run;
                                    }
                                    let delay = retry
                                        .next_delay(&err)
                                        .expect("admission refusals are retryable");
                                    std::thread::sleep(delay);
                                }
                                Err(other) => panic!("{}: submit failed: {other}", client),
                            }
                        }
                        sent += 1;
                    }
                    std::thread::sleep(Duration::from_micros(rng.below(300)));
                }
            })
        })
        .collect();
    for h in clients {
        h.join().unwrap();
    }
    // Quiesce: let the dispatchers finish everything admitted (periodic
    // jobs keep re-arming until their repeats run out).
    let drain_start = Instant::now();
    while s.in_flight() > 0 {
        std::thread::sleep(Duration::from_millis(1));
        assert!(
            drain_start.elapsed() < Duration::from_secs(30),
            "{}: scheduler failed to drain",
            b.label
        );
    }
    let report = s.stop();

    assert_eq!(
        report.admitted, report.completed,
        "{}: conservation",
        b.label
    );
    assert_eq!(report.in_flight_at_stop, 0, "{}: quiesced stop", b.label);
    // The obs pipeline must agree with the report: every miss the shard
    // counted was also recorded as a CounterEvent::DeadlineMiss.
    let snap = recorder.snapshot();
    assert_eq!(
        snap.event(CounterEvent::DeadlineMiss),
        report.misses,
        "{}: recorder and report disagree on misses",
        b.label
    );

    BenchRecord {
        name: b.label.into(),
        fields: vec![
            ("rank_error_bound", b.rank_error_bound as f64),
            ("miss_rate", report.miss_rate()),
            ("misses", report.misses as f64),
            ("dispatched", report.dispatched as f64),
            ("admitted", report.admitted as f64),
            (
                "rejected",
                (report.rejected_quota + report.rejected_capacity) as f64,
            ),
            ("rearmed", report.rearmed as f64),
            ("latency_p50_ns", report.latency_ns.p50() as f64),
            ("latency_p99_ns", report.latency_ns.p99() as f64),
            ("latency_p999_ns", report.latency_ns.p999() as f64),
            ("delay_slots_p50", report.delay_slots.p50() as f64),
            ("delay_slots_p99", report.delay_slots.p99() as f64),
            ("delay_slots_max", report.delay_slots.max() as f64),
        ],
    }
}

// ---- Overload regime: shedding on vs off ---------------------------------
//
// A deliberately drowned single shard: four clients spam one-shot jobs with
// 40 dispatch-slots of slack into a 1024-slot capacity served at 50 µs per
// job. Without shedding the backlog sits at the full capacity and every
// admitted job waits ~25× its slack — throughput survives but *goodput*
// (dispatches that met their deadline) collapses. With deadline-aware
// shedding the admission gate bounces jobs whose estimated wait exceeds
// their slack, the backlog holds near the meetable bound, and the same
// service rate turns into deadline-met work. The bench asserts the
// headline directly: shed-on goodput ≥ shed-off goodput with strictly
// fewer misses.

/// Per-job service time in the overload regime.
const OVERLOAD_SERVICE_NS: u64 = 50_000;
/// Relative deadline: 40 dispatch slots of slack.
const OVERLOAD_SLACK_NS: u64 = 40 * OVERLOAD_SERVICE_NS;
/// Global in-flight capacity — ~25× deeper than the meetable backlog.
const OVERLOAD_CAPACITY: usize = 1024;

fn run_overload(shed: bool, duration: Duration) -> BenchRecord {
    let cfg = ServerConfig {
        shards: 1,
        tenants: TENANTS as usize,
        clients: CLIENTS,
        bands: 512,
        horizon_ns: duration.as_nanos() as u64 + 1_000_000_000,
        backend: PqConfig::SingleLock,
        drain_batch: 8,
        global_capacity: OVERLOAD_CAPACITY,
        tenant_quota: OVERLOAD_CAPACITY, // only the global cap binds
        service_ns: OVERLOAD_SERVICE_NS,
        overload: OverloadConfig { shed, margin_ns: 0 },
        ..ServerConfig::default()
    };
    let s = Arc::new(Scheduler::new(cfg).unwrap());
    let start = Instant::now();
    s.start();
    let until = start + duration;
    let clients: Vec<_> = (0..CLIENTS)
        .map(|client| {
            let s = Arc::clone(&s);
            std::thread::spawn(move || {
                let mut rng = XorShift64Star::new(0xD15EA5E ^ ((client as u64) << 40));
                let mut retry =
                    RetryPolicy::new(5_000, 1_000_000, 0xFEED ^ ((client as u64) << 16));
                let mut sent = 0u64;
                while Instant::now() < until {
                    let tenant = TenantId(rng.below(TENANTS) as u32);
                    let spec = JobSpec::once(tenant, Deadline::In(OVERLOAD_SLACK_NS), sent);
                    match s.submit(client, spec) {
                        Ok(_) => {
                            sent += 1;
                            retry.note_ok();
                        }
                        Err(err) => {
                            // Capacity refusals back off exponentially; a
                            // shed's Retry hint is the server's own drain
                            // estimate.
                            let delay = retry
                                .next_delay(&err)
                                .expect("overload refusals are retryable");
                            std::thread::sleep(
                                delay.min(until.saturating_duration_since(Instant::now())),
                            );
                        }
                    }
                }
            })
        })
        .collect();
    for h in clients {
        h.join().unwrap();
    }
    let drain_start = Instant::now();
    while s.in_flight() > 0 {
        std::thread::sleep(Duration::from_millis(1));
        assert!(
            drain_start.elapsed() < Duration::from_secs(30),
            "overload run failed to drain"
        );
    }
    let run_s = start.elapsed().as_secs_f64();
    let report = s.stop();
    assert_eq!(report.admitted, report.completed, "overload: conservation");
    assert_eq!(report.in_flight_at_stop, 0);
    let goodput = (report.dispatched - report.misses) as f64 / run_s;
    BenchRecord {
        name: if shed {
            "overload_shed_on".into()
        } else {
            "overload_shed_off".into()
        },
        fields: vec![
            ("shed_enabled", if shed { 1.0 } else { 0.0 }),
            ("admitted", report.admitted as f64),
            ("dispatched", report.dispatched as f64),
            ("misses", report.misses as f64),
            ("miss_rate", report.miss_rate()),
            ("shed", report.shed as f64),
            (
                "rejected",
                (report.rejected_quota + report.rejected_capacity) as f64,
            ),
            ("goodput_per_s", goodput),
            ("run_ms", run_s * 1e3),
        ],
    }
}

fn main() {
    // ~2s of closed-loop load per backend at full scale.
    let duration = Duration::from_millis((2_000 * scale_percent() as u64 / 100).max(200));
    let geo = geometry(duration);

    let mut records = vec![BenchRecord {
        name: "meta".into(),
        fields: vec![
            ("shards", SHARDS as f64),
            ("clients", CLIENTS as f64),
            ("tenants", TENANTS as f64),
            ("bands", BANDS as f64),
            ("service_ns", SERVICE_NS as f64),
            ("capacity", CAPACITY as f64),
            ("slack_slots", (geo.offset_ns / SERVICE_NS) as f64),
            ("duration_ms", duration.as_millis() as f64),
            ("overload_service_ns", OVERLOAD_SERVICE_NS as f64),
            (
                "overload_slack_slots",
                (OVERLOAD_SLACK_NS / OVERLOAD_SERVICE_NS) as f64,
            ),
            ("overload_capacity", OVERLOAD_CAPACITY as f64),
        ],
    }];
    let mut rows = Vec::new();
    for b in backends() {
        let rec = run_backend(&b, duration, &geo);
        let get = |k: &str| {
            rec.fields
                .iter()
                .find(|(n, _)| *n == k)
                .map(|(_, v)| *v)
                .unwrap_or(f64::NAN)
        };
        rows.push(vec![
            b.label.to_string(),
            format!("{:.0}", get("rank_error_bound")),
            format!("{:.0}", get("dispatched")),
            format!("{:.5}", get("miss_rate")),
            format!("{:.0}", get("latency_p50_ns")),
            format!("{:.0}", get("latency_p999_ns")),
            format!("{:.0}", get("delay_slots_p99")),
        ]);
        records.push(rec);
    }
    print_table(
        "Scheduler backends — deadline-miss rate vs rank-error bound (closed loop, bursty, hot-tenant skew)",
        &[
            "backend",
            "rank bound",
            "dispatched",
            "miss rate",
            "lat p50 ns",
            "lat p999 ns",
            "delay p99",
        ],
        &rows,
    );

    // Overload regime: deadline-aware shedding on vs off.
    let overload_duration = Duration::from_millis((1_000 * scale_percent() as u64 / 100).max(100));
    let off = run_overload(false, overload_duration);
    let on = run_overload(true, overload_duration);
    let get = |rec: &BenchRecord, k: &str| {
        rec.fields
            .iter()
            .find(|(n, _)| *n == k)
            .map(|(_, v)| *v)
            .unwrap_or(f64::NAN)
    };
    let overload_rows: Vec<Vec<String>> = [&off, &on]
        .iter()
        .map(|r| {
            vec![
                r.name.clone(),
                format!("{:.0}", get(r, "dispatched")),
                format!("{:.0}", get(r, "misses")),
                format!("{:.5}", get(r, "miss_rate")),
                format!("{:.0}", get(r, "shed")),
                format!("{:.0}", get(r, "goodput_per_s")),
            ]
        })
        .collect();
    print_table(
        "Overload regime (SingleLock, 25x oversubscribed) — shedding off vs on",
        &[
            "mode",
            "dispatched",
            "misses",
            "miss rate",
            "shed",
            "goodput/s",
        ],
        &overload_rows,
    );
    // The headline claims, asserted in-bench so a regression fails loudly:
    // shedding converts the same service rate into deadline-met work.
    assert!(
        get(&on, "misses") < get(&off, "misses"),
        "shedding must strictly reduce deadline misses ({} vs {})",
        get(&on, "misses"),
        get(&off, "misses")
    );
    assert!(
        get(&on, "goodput_per_s") >= get(&off, "goodput_per_s"),
        "shedding must not reduce goodput ({} vs {})",
        get(&on, "goodput_per_s"),
        get(&off, "goodput_per_s")
    );
    assert!(get(&on, "shed") > 0.0, "the shed path must actually fire");
    records.push(off);
    records.push(on);

    let root = concat!(env!("CARGO_MANIFEST_DIR"), "/../..");
    let path = format!("{root}/BENCH_server.json");
    if let Err(e) = write_bench_json(&path, "server_load", &records) {
        eprintln!("could not write {path}: {e}");
    }
    println!("wrote {path}");
}
