//! Batched and fused operation microbenches: what one lock hold (or one
//! sticky absorption, or one threading check) amortized over `k` items
//! buys, per algorithm.
//!
//! Four sections:
//!
//! 1. **Native k-sweep churn** — two threads alternate `insert_batch(k)` /
//!    `delete_min_batch(k)` on the four natively-batched algorithms at
//!    k ∈ {1, 8, 64}; ns per item-operation, with the speedup over k=1.
//!    k=1 goes through the same batched entry points, so the sweep
//!    isolates amortization, not call-shape differences. On a small host
//!    (CI runs on one core) the two threads mostly interleave, so this
//!    section under-reports what batching buys under real contention —
//!    which is what the next section measures.
//! 2. **Simulated contended k-sweep** — the same alternating churn on the
//!    simulated multiprocessor at 16 processors
//!    ([`run_batched_churn`]), where every `k = 1` operation pays a full
//!    contended lock handoff in the coherence model and `k = 64` pays it
//!    once per batch. Cycles per item, with the speedup over k=1; this is
//!    the headline amortization number.
//! 3. **replace_min A/B** — the fused root swap against an explicit
//!    `delete_min` + `insert` pair on the heap-backed queues, where the
//!    fusion saves a sift-up plus a second lock acquisition.
//! 4. **simulated quality sweep** — `run_batched_quality` on the
//!    simulator: the relaxed MultiQueue's drain rank error as `k` grows
//!    (each grab serves a queue's tail without re-probing), audited
//!    against the conservative bound, plus per-item drain cycles for the
//!    strict SingleLock as the amortization cross-check in simulated
//!    cycles.
//!
//! Everything lands in `BENCH_batch.json` at the workspace root.

use std::sync::Arc;
use std::time::Instant;

use funnelpq::obs::AtomicRecorder;
use funnelpq::{Algorithm, BoundedPq, HuntConfig, PqBuilder, PqConfig};
use funnelpq_bench::{
    print_table, scale_percent, standard_workload, write_bench_json, BenchRecord,
};
use funnelpq_simqueues::workload::{run_batched_churn, run_batched_quality};

fn builder(a: Algorithm, n: usize, t: usize) -> PqBuilder {
    let cfg = match PqConfig::for_algorithm(a).expect("natively buildable") {
        PqConfig::HuntEtAl(_) => PqConfig::HuntEtAl(HuntConfig { capacity: 1 << 14 }),
        cfg => cfg,
    };
    PqBuilder::from_config(cfg, n, t)
}

/// Items each thread keeps in flight per rep, constant across `k` so every
/// sweep point moves the same number of items. Large enough that the one
/// spawn/join per rep is amortized to noise (it would otherwise add the
/// same flat ns/item to every `k` and compress the ratios).
const ITEMS_PER_REP: u64 = 4096;

/// Items resident in the queue while churning, so `delete_min_batch`
/// always finds a full grab. Kept modest: the sweep isolates per-call
/// overhead amortization, and a deep resident heap would bury it under
/// sift work that no batching can remove.
const PREFILL: usize = 128;

fn prefill(q: &dyn BoundedPq<u64>, n: usize) {
    let batch: Vec<(usize, u64)> = (0..n).map(|i| (i % 16, 1 << 40 | i as u64)).collect();
    q.insert_batch(0, batch).expect("prefill fits");
}

/// One thread's churn: `rounds` iterations of insert_batch(k) then
/// delete_min_batch(k).
fn churn(q: &dyn BoundedPq<u64>, tid: usize, k: usize, rounds: u64) {
    let mut out = Vec::with_capacity(k);
    let mut x = tid as u64 * 1_000_003;
    for _ in 0..rounds {
        let mut batch = Vec::with_capacity(k);
        for _ in 0..k {
            x = x.wrapping_add(7);
            batch.push(((x % 16) as usize, x));
        }
        q.insert_batch(tid, batch).expect("pris in range");
        out.clear();
        std::hint::black_box(q.delete_min_batch(tid, k, &mut out));
    }
}

/// Two contending threads churning batches of `k`; ns per item-operation
/// (each round moves `2k` items per thread).
fn two_thread_batch_churn(q: Arc<dyn BoundedPq<u64>>, k: usize, reps: u64) -> f64 {
    let rounds = (ITEMS_PER_REP / k as u64).max(1);
    // Warmup rep to fault in nodes and settle the prefill.
    churn(&*q, 0, k, rounds);
    let t0 = Instant::now();
    for _ in 0..reps {
        let q2 = Arc::clone(&q);
        let h = std::thread::spawn(move || churn(&*q2, 1, k, rounds));
        churn(&*q, 0, k, rounds);
        h.join().unwrap();
    }
    let item_ops = reps * rounds * k as u64 * 2 * 2;
    t0.elapsed().as_nanos() as f64 / item_ops as f64
}

struct SweepRow {
    algorithm: Algorithm,
    k: usize,
    ns_per_op: f64,
    speedup_vs_k1: f64,
}

fn bench_k_sweep(reps: u64) -> Vec<SweepRow> {
    let algos = [
        Algorithm::SingleLock,
        Algorithm::HuntEtAl,
        Algorithm::SkipList,
        Algorithm::MultiQueue,
    ];
    let mut rows = Vec::new();
    for a in algos {
        let mut base = f64::NAN;
        for k in [1usize, 8, 64] {
            // Best of two passes: scheduler preemption on small CI hosts
            // occasionally lands mid-hold and inflates a whole pass.
            let ns = (0..2)
                .map(|_| {
                    let q: Arc<dyn BoundedPq<u64>> = Arc::from(builder(a, 16, 2).build::<u64>());
                    prefill(&*q, PREFILL);
                    two_thread_batch_churn(q, k, reps)
                })
                .fold(f64::INFINITY, f64::min);
            if k == 1 {
                base = ns;
            }
            rows.push(SweepRow {
                algorithm: a,
                k,
                ns_per_op: ns,
                speedup_vs_k1: base / ns,
            });
        }
    }
    rows
}

struct SimSweepRow {
    algorithm: Algorithm,
    k: usize,
    cycles_per_item: f64,
    speedup_vs_k1: f64,
}

/// Simulated contended sweep: 16 processors churning batches of `k` on
/// the coherence-modelled machine; cycles per item moved.
fn bench_sim_k_sweep() -> Vec<SimSweepRow> {
    let algos = [
        Algorithm::SingleLock,
        Algorithm::HuntEtAl,
        Algorithm::SkipList,
        Algorithm::MultiQueue,
    ];
    let mut wl = standard_workload(16, 32);
    // Enough items per processor that even k=64 gets several full batches.
    wl.ops_per_proc = wl.ops_per_proc.max(256);
    let mut rows = Vec::new();
    for a in algos {
        let mut base = f64::NAN;
        for k in [1usize, 8, 64] {
            let res = run_batched_churn(a, &wl, k);
            // Makespan per item: under lock saturation per-batch latency
            // grows with hold length even as throughput improves, so the
            // cycles-to-quiescence figure is the honest one.
            let per_item = res.total_cycles as f64 / (wl.procs * wl.ops_per_proc) as f64;
            if k == 1 {
                base = per_item;
            }
            rows.push(SimSweepRow {
                algorithm: a,
                k,
                cycles_per_item: per_item,
                speedup_vs_k1: base / per_item,
            });
        }
    }
    rows
}

/// Single-thread A/B: `iters` fused replace_min calls vs `iters` explicit
/// delete_min + insert pairs, on a queue preloaded with `PREFILL` items.
/// Returns (fused ns/op, pair ns/op).
fn replace_min_ab(a: Algorithm, iters: u64) -> (f64, f64) {
    let run = |fused: bool| {
        let q = builder(a, 16, 1).build::<u64>();
        prefill(&*q, PREFILL);
        let mut x = 0u64;
        let step = |x: &mut u64| {
            *x = x.wrapping_add(7);
            let pri = (*x % 16) as usize;
            if fused {
                std::hint::black_box(q.replace_min(0, pri, *x));
            } else {
                std::hint::black_box(q.delete_min(0));
                q.insert(0, pri, *x);
            }
        };
        for _ in 0..iters / 10 {
            step(&mut x);
        }
        let t0 = Instant::now();
        for _ in 0..iters {
            step(&mut x);
        }
        t0.elapsed().as_nanos() as f64 / iters as f64
    };
    (run(true), run(false))
}

fn main() {
    let reps = (8u64 * scale_percent() as u64 / 100).max(2);
    let iters = (100_000u64 * scale_percent() as u64 / 100).max(1_000);

    // 1. k-sweep.
    let sweep = bench_k_sweep(reps);
    print_table(
        "Batched churn, two contending threads (ns per item-op)",
        &["queue", "k", "ns/op", "speedup vs k=1"],
        &sweep
            .iter()
            .map(|r| {
                vec![
                    r.algorithm.name().to_string(),
                    r.k.to_string(),
                    format!("{:.0}", r.ns_per_op),
                    format!("{:.2}x", r.speedup_vs_k1),
                ]
            })
            .collect::<Vec<_>>(),
    );

    // 2. Simulated contended k-sweep at 16 processors.
    let sim_sweep = bench_sim_k_sweep();
    print_table(
        "Simulated batched churn, 16 contending processors (cycles per item)",
        &["queue", "k", "cyc/item", "speedup vs k=1"],
        &sim_sweep
            .iter()
            .map(|r| {
                vec![
                    r.algorithm.name().to_string(),
                    r.k.to_string(),
                    format!("{:.0}", r.cycles_per_item),
                    format!("{:.2}x", r.speedup_vs_k1),
                ]
            })
            .collect::<Vec<_>>(),
    );

    // 3. replace_min A/B on the heap-backed queues.
    let heap_backed = [
        Algorithm::SingleLock,
        Algorithm::HuntEtAl,
        Algorithm::MultiQueue,
    ];
    let replace: Vec<(Algorithm, f64, f64)> = heap_backed
        .into_iter()
        .map(|a| {
            let (fused, pair) = replace_min_ab(a, iters);
            (a, fused, pair)
        })
        .collect();
    print_table(
        "replace_min vs delete_min + insert (single thread, ns per op)",
        &["queue", "fused ns", "pop+push ns", "speedup"],
        &replace
            .iter()
            .map(|(a, fused, pair)| {
                vec![
                    a.name().to_string(),
                    format!("{fused:.0}"),
                    format!("{pair:.0}"),
                    format!("{:.2}x", pair / fused),
                ]
            })
            .collect::<Vec<_>>(),
    );

    // 4. Simulated quality sweep: MultiQueue drain rank error vs k, with
    // the SingleLock per-item drain cycles as the strict cross-check.
    let mut quality_rows = Vec::new();
    let mut quality_table = Vec::new();
    for k in [1usize, 8, 64] {
        let wl = standard_workload(8, 32);
        let total = (wl.procs * wl.ops_per_proc) as u64;
        let mq = run_batched_quality(Algorithm::MultiQueue, &wl, k, Some(total))
            .unwrap_or_else(|e| panic!("MultiQueue k={k} failed audit: {e}"));
        let sl = run_batched_quality(Algorithm::SingleLock, &wl, k, None)
            .unwrap_or_else(|e| panic!("SingleLock k={k} failed audit: {e}"));
        assert_eq!(
            sl.report.rank_error.max(),
            0,
            "SingleLock batched drain must stay exactly sorted"
        );
        let ranks = &mq.report.rank_error;
        quality_table.push(vec![
            k.to_string(),
            format!("{:.2}", ranks.mean()),
            ranks.p99().to_string(),
            ranks.max().to_string(),
            format!("{:.0}", mq.result.delete.mean() / k as f64),
            format!("{:.0}", sl.result.delete.mean() / k as f64),
        ]);
        quality_rows.push(BenchRecord {
            name: format!("sim_quality_k{k}"),
            fields: vec![
                ("k", k as f64),
                ("mq_rank_error_mean", ranks.mean()),
                ("mq_rank_error_p99", ranks.p99() as f64),
                ("mq_rank_error_max", ranks.max() as f64),
                ("mq_rank_error_bound", total as f64),
                (
                    "mq_drain_cycles_per_item",
                    mq.result.delete.mean() / k as f64,
                ),
                (
                    "sl_drain_cycles_per_item",
                    sl.result.delete.mean() / k as f64,
                ),
                ("sl_rank_error_max", sl.report.rank_error.max() as f64),
            ],
        });
    }
    print_table(
        "Simulated batched drain quality (MultiQueue rank error; cycles per item)",
        &[
            "k",
            "MQ rank mean",
            "MQ rank p99",
            "MQ rank max",
            "MQ cyc/item",
            "SL cyc/item",
        ],
        &quality_table,
    );

    // Batch-size histogram smoke: one instrumented churn run, so the
    // report carries the BatchOp counter and mean batch size alongside
    // the timings.
    let rec = Arc::new(AtomicRecorder::new());
    let q = builder(Algorithm::SingleLock, 16, 1)
        .recorder(Arc::clone(&rec))
        .build::<u64>();
    prefill(&*q, PREFILL);
    churn(&*q, 0, 8, 64);
    let snap = rec.snapshot();
    assert!(snap.batch.count > 0, "batched churn must record BatchOp");

    let mut records: Vec<BenchRecord> = sweep
        .iter()
        .map(|r| BenchRecord {
            name: format!("{}_k{}", r.algorithm.name(), r.k),
            fields: vec![
                ("k", r.k as f64),
                ("ns_per_op", r.ns_per_op),
                ("speedup_vs_k1", r.speedup_vs_k1),
            ],
        })
        .collect();
    records.extend(sim_sweep.iter().map(|r| BenchRecord {
        name: format!("sim_churn_{}_k{}", r.algorithm.name(), r.k),
        fields: vec![
            ("k", r.k as f64),
            ("cycles_per_item", r.cycles_per_item),
            ("speedup_vs_k1", r.speedup_vs_k1),
        ],
    }));
    records.extend(replace.iter().map(|(a, fused, pair)| BenchRecord {
        name: format!("{}_replace_min_ab", a.name()),
        fields: vec![
            ("fused_ns_per_op", *fused),
            ("pop_push_ns_per_op", *pair),
            ("fused_speedup", pair / fused),
        ],
    }));
    records.extend(quality_rows);
    records.push(BenchRecord {
        name: "batch_histogram_smoke".into(),
        fields: vec![
            ("batch_count", snap.batch.count as f64),
            ("batch_total_items", snap.batch.total_items as f64),
            ("batch_mean_items", snap.batch.mean_items()),
        ],
    });

    // Benches run with the package directory as cwd; anchor the report at
    // the workspace root where CI picks it up.
    let root = concat!(env!("CARGO_MANIFEST_DIR"), "/../..");
    let path = format!("{root}/BENCH_batch.json");
    if let Err(e) = write_bench_json(&path, "batch_ops", &records) {
        eprintln!("could not write {path}: {e}");
    }
    println!("wrote {path}");
}
