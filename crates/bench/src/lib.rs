//! Shared plumbing for the figure-reproduction benches: experiment scaling,
//! table formatting, and the standard workload construction.

#![warn(missing_docs)]

use funnelpq::Algorithm;
use funnelpq_sim::trace::{chrome_trace_json, TimeSeries};
use funnelpq_simqueues::funnel::{CounterMode, SimFunnelConfig};
use funnelpq_simqueues::workload::{
    run_counter_workload_traced, run_queue_workload_traced, TracedRun, Workload,
};
use funnelpq_util::json::{JsonWriter, SCHEMA_VERSION};

/// Scale factor for experiment sizes, set with `FUNNELPQ_SCALE` (percent).
/// `FUNNELPQ_FAST=1` is shorthand for 25%. Defaults to 100%.
pub fn scale_percent() -> usize {
    if std::env::var("FUNNELPQ_FAST")
        .map(|v| v == "1")
        .unwrap_or(false)
    {
        return 25;
    }
    std::env::var("FUNNELPQ_SCALE")
        .ok()
        .and_then(|v| v.parse().ok())
        .filter(|&v: &usize| v > 0)
        .unwrap_or(100)
}

/// Operations per processor after scaling (base 64, minimum 8).
pub fn scaled_ops() -> usize {
    (64 * scale_percent() / 100).max(8)
}

/// The standard workload of §4, scaled.
pub fn standard_workload(procs: usize, num_priorities: usize) -> Workload {
    let mut wl = Workload::standard(procs, num_priorities);
    wl.ops_per_proc = scaled_ops();
    wl
}

/// Largest processor count the concurrency sweeps run, set with
/// `FUNNELPQ_MAX_P`. Defaults to 256 (the paper's figures); the event-wheel
/// scheduler makes 512 and 1024 practical.
pub fn max_procs() -> usize {
    std::env::var("FUNNELPQ_MAX_P")
        .ok()
        .and_then(|v| v.parse().ok())
        .filter(|&v: &usize| v > 0)
        .unwrap_or(256)
}

/// One measurement row of a machine-readable benchmark report: a name plus
/// `(key, value)` fields, serialized by [`write_bench_json`].
pub struct BenchRecord {
    /// Measurement identifier, e.g. `"wheel_p256"`.
    pub name: String,
    /// Numeric fields, emitted in order.
    pub fields: Vec<(&'static str, f64)>,
}

/// Writes a minimal JSON benchmark report via the workspace's shared
/// [`JsonWriter`] (no external serializer: the container builds fully
/// offline). Layout:
///
/// ```json
/// {"schema_version": 1, "benchmark": "...", "scale_percent": 100,
///  "results": [{"name": "...", "field": 1.0, ...}, ...]}
/// ```
///
/// `schema_version` is [`funnelpq_util::json::SCHEMA_VERSION`]; the CI
/// validators assert it so emitter and readers cannot silently drift.
pub fn write_bench_json(
    path: &str,
    benchmark: &str,
    records: &[BenchRecord],
) -> std::io::Result<()> {
    let mut w = JsonWriter::spaced();
    w.begin_obj(true);
    w.field_u64("schema_version", u64::from(SCHEMA_VERSION));
    w.field_str("benchmark", benchmark);
    w.field_u64("scale_percent", scale_percent() as u64);
    w.key("results");
    w.begin_arr(true);
    for r in records {
        w.begin_obj(false);
        w.field_str("name", &r.name);
        for (k, v) in &r.fields {
            w.field_f64(k, *v);
        }
        w.end();
    }
    w.end();
    w.end();
    let mut out = w.finish();
    out.push('\n');
    std::fs::write(path, out)
}

/// Prints a Markdown-ish table: header row, then one row per entry.
pub fn print_table(title: &str, header: &[&str], rows: &[Vec<String>]) {
    println!();
    println!("## {title}");
    println!();
    let widths: Vec<usize> = header
        .iter()
        .enumerate()
        .map(|(i, h)| {
            rows.iter()
                .map(|r| r.get(i).map(|c| c.len()).unwrap_or(0))
                .max()
                .unwrap_or(0)
                .max(h.len())
        })
        .collect();
    let fmt_row = |cells: Vec<String>| {
        let padded: Vec<String> = cells
            .iter()
            .zip(&widths)
            .map(|(c, w)| format!("{c:>w$}", w = w))
            .collect();
        println!("| {} |", padded.join(" | "));
    };
    fmt_row(header.iter().map(|s| s.to_string()).collect());
    println!(
        "|{}|",
        widths
            .iter()
            .map(|w| "-".repeat(w + 2))
            .collect::<Vec<_>>()
            .join("|")
    );
    for r in rows {
        fmt_row(r.clone());
    }
    println!();
}

/// True when the figure benches should also emit one exemplar trace
/// artifact: pass `--trace` after `--` (`cargo bench --bench fig7 --
/// --trace`) or set `FUNNELPQ_TRACE=1`.
pub fn trace_enabled() -> bool {
    std::env::var("FUNNELPQ_TRACE")
        .map(|v| v == "1")
        .unwrap_or(false)
        || std::env::args().any(|a| a == "--trace")
}

/// Directory trace artifacts are written to: `FUNNELPQ_TRACE_DIR`, or the
/// workspace root (next to the `BENCH_*.json` reports).
pub fn trace_dir() -> String {
    std::env::var("FUNNELPQ_TRACE_DIR")
        .unwrap_or_else(|_| concat!(env!("CARGO_MANIFEST_DIR"), "/../..").into())
}

/// A time-series window for a run of `total_cycles`: about 1% of the run,
/// never finer than 256 cycles.
pub fn trace_window(total_cycles: u64) -> u64 {
    (total_cycles / 100).max(256)
}

/// Writes one traced run's artifacts — `TRACE_<tag>.json` (Chrome Trace
/// Format, Perfetto-loadable) and `TIMESERIES_<tag>.json` (windowed
/// contention series) — into [`trace_dir`]. Returns the two paths.
pub fn write_trace_files(tag: &str, traced: &TracedRun) -> std::io::Result<(String, String)> {
    let window = trace_window(traced.result.total_cycles);
    let series = TimeSeries::build(&traced.events, &traced.regions, window);
    let chrome = chrome_trace_json(&traced.events, &traced.regions, 16, Some(&series));
    let dir = trace_dir();
    let trace_path = format!("{dir}/TRACE_{tag}.json");
    let series_path = format!("{dir}/TIMESERIES_{tag}.json");
    std::fs::write(&trace_path, chrome)?;
    std::fs::write(&series_path, series.to_json())?;
    Ok((trace_path, series_path))
}

/// Runs `algo` on `wl` with tracing attached and writes the exemplar
/// artifacts for figure `tag` (see [`write_trace_files`]).
pub fn write_trace_artifacts(
    tag: &str,
    algo: Algorithm,
    wl: &Workload,
) -> std::io::Result<(String, String)> {
    let traced = run_queue_workload_traced(algo, wl);
    write_trace_files(tag, &traced)
}

/// Counter-workload variant of [`write_trace_artifacts`] (Figure 5).
pub fn write_counter_trace_artifacts(
    tag: &str,
    mode: CounterMode,
    pct_dec: u32,
    cfg: SimFunnelConfig,
    wl: &Workload,
) -> std::io::Result<(String, String)> {
    let traced = run_counter_workload_traced(mode, pct_dec, cfg, wl);
    write_trace_files(tag, &traced)
}

/// Short fixed-order list of the seven algorithms for figure 6.
pub fn all_algorithms() -> [Algorithm; 7] {
    Algorithm::ALL
}

/// The four high-concurrency algorithms for figures 7–9.
pub fn scalable_algorithms() -> [Algorithm; 4] {
    Algorithm::SCALABLE
}

/// Formats a mean-latency cell.
pub fn lat(v: f64) -> String {
    format!("{v:.0}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scaled_ops_has_floor() {
        assert!(scaled_ops() >= 8);
    }

    #[test]
    fn lat_formats_whole_cycles() {
        assert_eq!(lat(1234.56), "1235");
        assert_eq!(lat(0.4), "0");
    }

    #[test]
    fn workload_uses_scaled_ops() {
        let wl = standard_workload(4, 8);
        assert_eq!(wl.procs, 4);
        assert_eq!(wl.num_priorities, 8);
        assert_eq!(wl.ops_per_proc, scaled_ops());
    }

    #[test]
    fn algorithm_lists_are_consistent() {
        assert_eq!(all_algorithms().len(), 7);
        assert_eq!(scalable_algorithms().len(), 4);
        for a in scalable_algorithms() {
            assert!(all_algorithms().contains(&a));
        }
    }

    #[test]
    fn bench_json_is_well_formed() {
        let path = std::env::temp_dir().join("funnelpq_bench_json_test.json");
        let path = path.to_str().unwrap();
        write_bench_json(
            path,
            "t",
            &[
                BenchRecord {
                    name: "a".into(),
                    fields: vec![("x", 1.5), ("bad", f64::NAN)],
                },
                BenchRecord {
                    name: "b".into(),
                    fields: vec![("x", 2.0)],
                },
            ],
        )
        .unwrap();
        let text = std::fs::read_to_string(path).unwrap();
        assert!(text.starts_with("{\n  \"schema_version\": 3,"));
        assert!(text.contains("\"benchmark\": \"t\""));
        assert!(text.contains("\"x\": 1.5"));
        assert!(text.contains("\"bad\": null"));
        // Braces and brackets balance.
        let bal = |open: char, close: char| {
            text.chars().filter(|&c| c == open).count()
                == text.chars().filter(|&c| c == close).count()
        };
        assert!(bal('{', '}') && bal('[', ']'));
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn print_table_handles_ragged_rows() {
        // Smoke test: must not panic on short rows.
        print_table(
            "t",
            &["a", "bb"],
            &[vec!["1".into()], vec!["22".into(), "333".into()]],
        );
    }
}
