//! Property-style tests for the native combining-funnel structures, driven
//! by the in-repo deterministic PRNG: single-threaded sequences must match
//! simple reference models exactly (quiescent consistency degenerates to
//! sequential semantics), and multi-threaded histories must satisfy the
//! counter/stack invariants.

use funnelpq_sync::{Bounds, FunnelConfig, FunnelCounter, FunnelStack, SharedCounter};
use funnelpq_util::XorShift64Star;

#[derive(Debug, Clone, Copy)]
enum CounterOp {
    Inc,
    Dec,
}

fn counter_ops(rng: &mut XorShift64Star) -> Vec<CounterOp> {
    let len = 1 + rng.below(199) as usize;
    (0..len)
        .map(|_| {
            if rng.bool_with(0.5) {
                CounterOp::Inc
            } else {
                CounterOp::Dec
            }
        })
        .collect()
}

#[test]
fn funnel_counter_sequential_matches_model() {
    for seed in 0..48u64 {
        let mut rng = XorShift64Star::new(seed);
        let start = rng.below(50) as i64;
        let ops = counter_ops(&mut rng);
        let c = FunnelCounter::new(start, Bounds::non_negative(), FunnelConfig::for_threads(1));
        let mut model = start;
        for op in ops {
            match op {
                CounterOp::Inc => {
                    assert_eq!(c.fetch_inc(0), model);
                    model += 1;
                }
                CounterOp::Dec => {
                    assert_eq!(c.fetch_dec(0), model);
                    if model > 0 {
                        model -= 1;
                    }
                }
            }
        }
        assert_eq!(c.value(), model, "seed {seed}");
    }
}

#[test]
fn funnel_counter_unbounded_matches_model() {
    for seed in 0..48u64 {
        let mut rng = XorShift64Star::new(seed ^ 0xC0DE);
        let ops = counter_ops(&mut rng);
        let c = FunnelCounter::new(0, Bounds::unbounded(), FunnelConfig::for_threads(1));
        let mut model = 0i64;
        for op in ops {
            match op {
                CounterOp::Inc => {
                    assert_eq!(c.fetch_inc(0), model);
                    model += 1;
                }
                CounterOp::Dec => {
                    assert_eq!(c.fetch_dec(0), model);
                    model -= 1;
                }
            }
        }
        assert_eq!(c.value(), model, "seed {seed}");
    }
}

#[test]
fn funnel_stack_sequential_matches_vec() {
    for seed in 0..48u64 {
        let mut rng = XorShift64Star::new(seed ^ 0x57AC);
        let s: FunnelStack<u64> = FunnelStack::new(FunnelConfig::for_threads(1));
        let mut model: Vec<u64> = Vec::new();
        let len = 1 + rng.below(199);
        for _ in 0..len {
            if rng.bool_with(0.55) {
                let v = rng.below(1000);
                s.push(0, v);
                model.push(v);
            } else {
                assert_eq!(s.pop(0), model.pop());
            }
        }
        assert_eq!(s.is_empty(), model.is_empty());
        // Drain both and compare the remainder in LIFO order.
        while let Some(want) = model.pop() {
            assert_eq!(s.pop(0), Some(want));
        }
        assert_eq!(s.pop(0), None, "seed {seed}");
    }
}

#[test]
fn mcs_mutex_guards_arbitrary_mutation() {
    // Single-threaded sanity that guard drops restore invariants.
    for seed in 0..32u64 {
        let mut rng = XorShift64Star::new(seed ^ 0x3C5);
        let m = funnelpq_sync::McsMutex::new(Vec::<u8>::new());
        let mut model = Vec::new();
        let len = 1 + rng.below(99);
        for _ in 0..len {
            let op = rng.below(4) as u8;
            match op {
                0..=2 => {
                    m.lock().push(op);
                    model.push(op);
                }
                _ => {
                    assert_eq!(m.lock().pop(), model.pop());
                }
            }
        }
        assert_eq!(m.lock().clone(), model, "seed {seed}");
    }
}

/// Multi-threaded: final counter value must equal start + incs - decs
/// restricted by the bound; all returned values in bounds.
#[test]
fn funnel_counter_concurrent_invariants() {
    use std::sync::Arc;
    const T: usize = 8;
    const N: usize = 300;
    for (lo, start) in [(Some(0), 0i64), (None, 1_000)] {
        let bounds = Bounds { lo, hi: None };
        let c = Arc::new(FunnelCounter::new(
            start,
            bounds,
            FunnelConfig::for_threads(T),
        ));
        let handles: Vec<_> = (0..T)
            .map(|t| {
                let c = Arc::clone(&c);
                std::thread::spawn(move || {
                    for i in 0..N {
                        let v = if (t + i) % 2 == 0 {
                            c.fetch_inc(t)
                        } else {
                            c.fetch_dec(t)
                        };
                        if let Some(lo) = lo {
                            assert!(v >= lo, "returned {v} below bound {lo}");
                        }
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        if lo.is_none() {
            // Balanced incs and decs with no bound: exact conservation.
            assert_eq!(c.value(), start);
        } else {
            assert!(c.value() >= 0);
        }
    }
}
