//! Property-based tests for the native combining-funnel structures:
//! single-threaded sequences must match simple reference models exactly
//! (quiescent consistency degenerates to sequential semantics), and
//! multi-threaded histories must satisfy the counter/stack invariants.

use proptest::prelude::*;

use funnelpq_sync::{Bounds, FunnelConfig, FunnelCounter, FunnelStack, SharedCounter};

#[derive(Debug, Clone, Copy)]
enum CounterOp {
    Inc,
    Dec,
}

fn counter_ops() -> impl Strategy<Value = Vec<CounterOp>> {
    prop::collection::vec(
        prop_oneof![Just(CounterOp::Inc), Just(CounterOp::Dec)],
        1..200,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn funnel_counter_sequential_matches_model(ops in counter_ops(), start in 0i64..50) {
        let c = FunnelCounter::new(start, Bounds::non_negative(), FunnelConfig::for_threads(1));
        let mut model = start;
        for op in ops {
            match op {
                CounterOp::Inc => {
                    prop_assert_eq!(c.fetch_inc(0), model);
                    model += 1;
                }
                CounterOp::Dec => {
                    prop_assert_eq!(c.fetch_dec(0), model);
                    if model > 0 {
                        model -= 1;
                    }
                }
            }
        }
        prop_assert_eq!(c.value(), model);
    }

    #[test]
    fn funnel_counter_unbounded_matches_model(ops in counter_ops()) {
        let c = FunnelCounter::new(0, Bounds::unbounded(), FunnelConfig::for_threads(1));
        let mut model = 0i64;
        for op in ops {
            match op {
                CounterOp::Inc => {
                    prop_assert_eq!(c.fetch_inc(0), model);
                    model += 1;
                }
                CounterOp::Dec => {
                    prop_assert_eq!(c.fetch_dec(0), model);
                    model -= 1;
                }
            }
        }
        prop_assert_eq!(c.value(), model);
    }

    #[test]
    fn funnel_stack_sequential_matches_vec(ops in prop::collection::vec(prop::option::of(0u64..1000), 1..200)) {
        let s: FunnelStack<u64> = FunnelStack::new(FunnelConfig::for_threads(1));
        let mut model: Vec<u64> = Vec::new();
        for op in ops {
            match op {
                Some(v) => {
                    s.push(0, v);
                    model.push(v);
                }
                None => {
                    prop_assert_eq!(s.pop(0), model.pop());
                }
            }
        }
        prop_assert_eq!(s.is_empty(), model.is_empty());
        // Drain both and compare the remainder in LIFO order.
        while let Some(want) = model.pop() {
            prop_assert_eq!(s.pop(0), Some(want));
        }
        prop_assert_eq!(s.pop(0), None);
    }

    #[test]
    fn mcs_mutex_guards_arbitrary_mutation(ops in prop::collection::vec(0u8..4, 1..100)) {
        // Single-threaded sanity that guard drops restore invariants.
        let m = funnelpq_sync::McsMutex::new(Vec::<u8>::new());
        let mut model = Vec::new();
        for op in ops {
            match op {
                0..=2 => {
                    m.lock().push(op);
                    model.push(op);
                }
                _ => {
                    prop_assert_eq!(m.lock().pop(), model.pop());
                }
            }
        }
        prop_assert_eq!(m.lock().clone(), model);
    }
}

/// Multi-threaded: final counter value must equal start + incs - decs
/// restricted by the bound; all returned values in bounds.
#[test]
fn funnel_counter_concurrent_invariants() {
    use std::sync::Arc;
    const T: usize = 8;
    const N: usize = 300;
    for (lo, start) in [(Some(0), 0i64), (None, 1_000)] {
        let bounds = Bounds { lo, hi: None };
        let c = Arc::new(FunnelCounter::new(
            start,
            bounds,
            FunnelConfig::for_threads(T),
        ));
        let handles: Vec<_> = (0..T)
            .map(|t| {
                let c = Arc::clone(&c);
                std::thread::spawn(move || {
                    for i in 0..N {
                        let v = if (t + i) % 2 == 0 {
                            c.fetch_inc(t)
                        } else {
                            c.fetch_dec(t)
                        };
                        if let Some(lo) = lo {
                            assert!(v >= lo, "returned {v} below bound {lo}");
                        }
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        if lo.is_none() {
            // Balanced incs and decs with no bound: exact conservation.
            assert_eq!(c.value(), start);
        } else {
            assert!(c.value() >= 0);
        }
    }
}
