//! # funnelpq-sync
//!
//! Native (real-thread) concurrency substrate for the `funnelpq` priority
//! queues, reproducing the building blocks of Shavit & Zemach, *Scalable
//! Concurrent Priority Queue Algorithms* (PODC 1999):
//!
//! * [`McsLock`] / [`McsMutex`] — the Mellor-Crummey & Scott queue lock the
//!   paper uses for bins and low-traffic counters;
//! * [`TtasMutex`] — a centralized test-and-test-and-set baseline lock;
//! * [`LockBin`] — the paper's Figure-1 bin (lock + pool + one-read
//!   emptiness test);
//! * [`CasCounter`] / [`LockedCounter`] — non-combining shared counters;
//! * [`FunnelCounter`] — the combining-funnel counter with *bounded*
//!   fetch-and-decrement and elimination (paper §3.3, Figure 10);
//! * [`FunnelStack`] — the combining-funnel stack used as a scalable bin,
//!   with push/pop elimination.
//!
//! All funnel structures are quiescently consistent; the locks and
//! lock-based structures are linearizable.
//!
//! ## Thread ids
//!
//! Funnel structures identify participants by dense thread ids
//! (`0..max_threads`). Using one id from two threads simultaneously is a
//! logic error (operations may return wrong values) but never memory-unsafe.
//!
//! ## Example
//!
//! ```
//! use funnelpq_sync::{Bounds, FunnelConfig, FunnelCounter, SharedCounter};
//! use std::sync::Arc;
//!
//! let c = Arc::new(FunnelCounter::new(0, Bounds::non_negative(),
//!                                     FunnelConfig::for_threads(8)));
//! let handles: Vec<_> = (0..8).map(|tid| {
//!     let c = Arc::clone(&c);
//!     std::thread::spawn(move || { c.fetch_inc(tid); })
//! }).collect();
//! for h in handles { h.join().unwrap(); }
//! assert_eq!(c.value(), 8);
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

mod bin;
mod counter;
mod funnel;
mod funnel_stack;
mod mcs;
pub mod probe;
mod slots;
mod ttas;

pub use bin::{BinOrder, LockBin};
pub use counter::{Bounds, CasCounter, LockedCounter, SharedCounter};
pub use funnel::{FunnelConfig, FunnelCounter};
pub use funnel_stack::FunnelStack;
pub use mcs::{McsGuard, McsLock, McsMutex, McsMutexGuard};
pub use probe::{CounterEvent, EventSink, SinkRef};
pub use ttas::{TtasGuard, TtasMutex};
