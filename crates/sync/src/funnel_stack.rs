//! Combining-funnel stack: the paper's funnel-based "bin".
//!
//! Same collision machinery as [`crate::FunnelCounter`], but operations are
//! `push` / `pop` and what flows through the combining trees are *chains of
//! stack nodes* rather than integer deltas:
//!
//! * two colliding pushes splice their chains — a push tree of size `k`
//!   reaches the central stack as one pre-linked chain installed with a
//!   single update;
//! * two colliding pops merge — a pop tree of size `k` detaches `k` nodes
//!   from the central stack in one critical section and distributes them
//!   back down the tree;
//! * a push tree colliding with a pop tree of the same size *eliminates*:
//!   the pushers' chain is handed straight to the poppers and the central
//!   stack is never touched.
//!
//! Emptiness is a single read of the head pointer, which is what makes the
//! `delete-min` scan of `LinearFunnels` cheap. Like the paper's structure,
//! the stack is quiescently consistent.

use std::marker::PhantomData;
use std::ptr;
use std::sync::atomic::{AtomicI64, AtomicPtr, AtomicU64, AtomicUsize, Ordering};

use funnelpq_util::{AtomicRng, Backoff, CachePadded};

use crate::funnel::FunnelConfig;
use crate::probe::{CounterEvent, SinkRef};
use crate::slots::SlotArray;
use crate::ttas::TtasMutex;

struct Node<T> {
    item: Option<T>,
    next: *mut Node<T>,
}

/// `location` states beyond layer indices.
const LOC_FROZEN: u64 = u64::MAX - 1;
/// Result word: 0 = none yet; low 3 bits tag, rest pointer.
const RES_NONE: u64 = 0;
const TAG_DONE: u64 = 1; // push completed
const TAG_CHAIN: u64 = 2; // pop completed; high bits = chain head (may be null)

struct Record<T> {
    location: CachePadded<AtomicU64>,
    /// +k for a push tree of k items, -k for a pop tree of k requests.
    sum: AtomicI64,
    /// Head/tail of the pre-linked chain carried by a push tree root.
    chain_head: AtomicPtr<Node<T>>,
    chain_tail: AtomicPtr<Node<T>>,
    result: AtomicU64,
    width_frac: AtomicUsize,
    /// Adaption: layers to traverse before going central (owner-only).
    depth_pref: AtomicUsize,
    /// Per-thread xorshift64* slot-selection stream, seeded from the dense
    /// thread id (owner-only; no TLS lookup per collision attempt).
    rng: AtomicRng,
}

impl<T> Record<T> {
    fn new(tid: usize, levels: usize) -> Self {
        Record {
            location: CachePadded::new(AtomicU64::new(LOC_FROZEN)),
            sum: AtomicI64::new(0),
            chain_head: AtomicPtr::new(ptr::null_mut()),
            chain_tail: AtomicPtr::new(ptr::null_mut()),
            result: AtomicU64::new(RES_NONE),
            width_frac: AtomicUsize::new(256),
            depth_pref: AtomicUsize::new(levels),
            rng: AtomicRng::new(tid as u64),
        }
    }
}

/// A concurrent stack (pool) built from combining funnels with elimination.
///
/// Thread ids must be dense, below the config's `max_threads`, and not used
/// by two threads at once.
///
/// # Examples
///
/// ```
/// use funnelpq_sync::{FunnelConfig, FunnelStack};
/// let s: FunnelStack<u32> = FunnelStack::new(FunnelConfig::for_threads(4));
/// s.push(0, 7);
/// assert!(!s.is_empty());
/// assert_eq!(s.pop(0), Some(7));
/// assert_eq!(s.pop(0), None);
/// ```
pub struct FunnelStack<T> {
    cfg: FunnelConfig,
    /// Head of the central chain; read without the lock for emptiness.
    head: CachePadded<AtomicPtr<Node<T>>>,
    /// Serializes structural mutation of the central chain.
    central_lock: TtasMutex<()>,
    records: Box<[Record<T>]>,
    layers: Vec<SlotArray>,
    sink: Option<SinkRef>,
    _marker: PhantomData<T>,
}

// SAFETY: nodes carrying `T` move between threads through the funnel
// protocol; each node's item is consumed by exactly one thread.
unsafe impl<T: Send> Send for FunnelStack<T> {}
unsafe impl<T: Send> Sync for FunnelStack<T> {}

enum Outcome<T> {
    /// Push applied (or eliminated).
    Done,
    /// Pop outcome: chain of nodes, ours first (null = empty pool).
    Chain(*mut Node<T>),
}

impl<T: Send> FunnelStack<T> {
    // Out-of-line so the sink-absent path pays only a not-taken branch.
    #[cold]
    #[inline(never)]
    fn report_batch(
        &self,
        collisions_won: u32,
        central_locks: u64,
        elim_count: u64,
        elim_miss: u64,
        grows: u64,
        shrinks: u64,
    ) {
        let Some(sink) = &self.sink else { return };
        if collisions_won > 0 {
            sink.event_n(CounterEvent::FunnelCollision, u64::from(collisions_won));
        }
        if central_locks > 0 {
            sink.event_n(CounterEvent::LockAcquire, central_locks);
        }
        if elim_count > 0 {
            sink.event_n(CounterEvent::ElimHit, elim_count);
        }
        if elim_miss > 0 {
            sink.event_n(CounterEvent::ElimMiss, elim_miss);
        }
        if grows > 0 {
            sink.event_n(CounterEvent::AdaptGrow, grows);
        }
        if shrinks > 0 {
            sink.event_n(CounterEvent::AdaptShrink, shrinks);
        }
    }

    /// Creates an empty stack.
    ///
    /// # Panics
    ///
    /// Panics if the configuration is invalid.
    pub fn new(cfg: FunnelConfig) -> Self {
        Self::with_sink(cfg, None)
    }

    /// Like [`FunnelStack::new`], reporting funnel micro-events to `sink`,
    /// batched per operation: collisions won, central-lock acquisitions,
    /// operations eliminated / combined-but-applied-centrally (counted once,
    /// by the tree root), and adaption steps.
    ///
    /// # Panics
    ///
    /// Panics if the configuration is invalid.
    pub fn with_sink(cfg: FunnelConfig, sink: Option<SinkRef>) -> Self {
        cfg.validate();
        let levels = cfg.widths.len();
        let records = (0..cfg.max_threads)
            .map(|tid| Record::new(tid, levels))
            .collect();
        let layers = cfg
            .widths
            .iter()
            .map(|&w| SlotArray::new(w, cfg.pad_slots))
            .collect();
        FunnelStack {
            cfg,
            head: CachePadded::new(AtomicPtr::new(ptr::null_mut())),
            central_lock: TtasMutex::new(()),
            records,
            layers,
            sink,
            _marker: PhantomData,
        }
    }

    /// True when the central stack holds no items. A single shared read;
    /// may race with concurrent operations (quiescently consistent).
    pub fn is_empty(&self) -> bool {
        self.head.load(Ordering::Acquire).is_null()
    }

    /// Pushes `item`, possibly combining with or eliminating against
    /// concurrent operations.
    pub fn push(&self, tid: usize, item: T) {
        let node = Box::into_raw(Box::new(Node {
            item: Some(item),
            next: ptr::null_mut(),
        }));
        match self.operate(tid, 1, node, node) {
            Outcome::Done => {}
            Outcome::Chain(_) => unreachable!("push produced a pop result"),
        }
    }

    /// Pops an item, or returns `None` when the pool appears empty.
    pub fn pop(&self, tid: usize) -> Option<T> {
        match self.operate(tid, -1, ptr::null_mut(), ptr::null_mut()) {
            Outcome::Done => unreachable!("pop produced a push result"),
            Outcome::Chain(chain) => self.consume_chain_head(tid, chain),
        }
    }

    /// Takes the first node of `chain` as our own result and distributes the
    /// rest to the children recorded for `tid`'s last operation — except
    /// distribution state lives on the stack frame, so this helper only
    /// handles the head. (Distribution happens inside `operate`.)
    fn consume_chain_head(&self, _tid: usize, chain: *mut Node<T>) -> Option<T> {
        if chain.is_null() {
            return None;
        }
        // SAFETY: the protocol hands each popped node to exactly one op.
        let mut node = unsafe { Box::from_raw(chain) };
        node.item.take()
    }

    /// Core funnel traversal. For pushes, `chead`/`ctail` delimit the
    /// (initially 1-node) chain; for pops both are null.
    fn operate(
        &self,
        tid: usize,
        delta: i64,
        chead: *mut Node<T>,
        ctail: *mut Node<T>,
    ) -> Outcome<T> {
        assert!(tid < self.cfg.max_threads, "tid {tid} out of range");
        let me = &self.records[tid];
        let mut sum = delta;
        let mut ctail = ctail;
        let mut children: Vec<(usize, i64)> = Vec::new();
        let mut d: u64 = 0;
        let levels = self.layers.len() as u64;
        let max_d = (me.depth_pref.load(Ordering::Relaxed) as u64).min(levels);

        let mut attempts_made = 0u32;
        let mut collisions_won = 0u32;
        let mut central_contended = false;
        let mut was_captured = false;
        // Operations eliminated by this op acting as the colliding root
        // (covers both trees), and central-lock acquisitions (0 or 1).
        let mut elim_count = 0u64;
        let mut central_locks = 0u64;

        me.sum.store(sum, Ordering::Relaxed);
        me.chain_head.store(chead, Ordering::Relaxed);
        me.chain_tail.store(ctail, Ordering::Relaxed);
        me.result.store(RES_NONE, Ordering::Relaxed);
        me.location.store(d, Ordering::SeqCst);

        // Tag + chain pointer describing our tree's outcome. Unlike the
        // counter (whose central CAS can fail and loop back into the
        // collision layers), the stack's central section is lock-based and
        // always succeeds, so this is a run-once labelled block.
        let (tag, my_chain) = 'mainloop: {
            let mut n = 0;
            while n < self.cfg.attempts && d < max_d {
                n += 1;
                attempts_made += 1;
                let layer = &self.layers[d as usize];
                let frac = me.width_frac.load(Ordering::Relaxed);
                let wid = ((layer.len() * frac) / 256).clamp(1, layer.len());
                let slot = me.rng.below(wid as u64) as usize;
                let q = layer.swap(slot, tid + 1, Ordering::AcqRel);
                if q != 0 && q - 1 != tid {
                    let q = q - 1;
                    if me
                        .location
                        .compare_exchange(d, LOC_FROZEN, Ordering::SeqCst, Ordering::SeqCst)
                        .is_err()
                    {
                        was_captured = true;
                        break 'mainloop self.await_result(tid);
                    }
                    let qr = &self.records[q];
                    if qr
                        .location
                        .compare_exchange(d, LOC_FROZEN, Ordering::SeqCst, Ordering::SeqCst)
                        .is_ok()
                    {
                        collisions_won += 1;
                        let qsum = qr.sum.load(Ordering::SeqCst);
                        debug_assert_eq!(qsum.abs(), sum.abs());
                        if qsum == -sum {
                            // Elimination: the push tree's chain goes to the
                            // pop tree; the push tree is done.
                            elim_count = sum.unsigned_abs() * 2;
                            if sum > 0 {
                                // We are the pushers; q gets our chain.
                                qr.result.store(chead as u64 | TAG_CHAIN, Ordering::SeqCst);
                                break 'mainloop (TAG_DONE, ptr::null_mut());
                            } else {
                                // We are the poppers; take q's chain.
                                let qc = qr.chain_head.load(Ordering::SeqCst);
                                qr.result.store(TAG_DONE, Ordering::SeqCst);
                                break 'mainloop (TAG_CHAIN, qc);
                            }
                        }
                        // Same kind: merge trees.
                        if sum > 0 {
                            // Splice q's chain after ours.
                            let qh = qr.chain_head.load(Ordering::SeqCst);
                            let qt = qr.chain_tail.load(Ordering::SeqCst);
                            debug_assert!(!qh.is_null() && !qt.is_null());
                            // SAFETY: our tail is exclusively ours until the
                            // chain is handed off; q's chain is frozen.
                            unsafe { (*ctail).next = qh };
                            ctail = qt;
                            me.chain_tail.store(ctail, Ordering::SeqCst);
                        }
                        sum += qsum;
                        me.sum.store(sum, Ordering::SeqCst);
                        children.push((q, qsum));
                        d += 1;
                        me.location.store(d, Ordering::SeqCst);
                        n = 0;
                        continue;
                    }
                    me.location.store(d, Ordering::SeqCst);
                }
                let spin = self.cfg.spin[d as usize];
                for _ in 0..spin {
                    if me.location.load(Ordering::SeqCst) != d {
                        was_captured = true;
                        break 'mainloop self.await_result(tid);
                    }
                    std::hint::spin_loop();
                }
            }
            // Apply the tree to the central stack.
            match me
                .location
                .compare_exchange(d, LOC_FROZEN, Ordering::SeqCst, Ordering::SeqCst)
            {
                Ok(_) => {
                    if sum > 0 {
                        central_locks = 1;
                        let _g = match self.central_lock.try_lock() {
                            Some(g) => g,
                            None => {
                                central_contended = true;
                                self.central_lock.lock()
                            }
                        };
                        let old = self.head.load(Ordering::Relaxed);
                        // SAFETY: `ctail` is the last node of our private
                        // chain; linking it to the current head is the push.
                        unsafe { (*ctail).next = old };
                        self.head.store(chead, Ordering::Release);
                        break 'mainloop (TAG_DONE, ptr::null_mut());
                    } else {
                        // Detach up to |sum| nodes.
                        let want = (-sum) as usize;
                        central_locks = 1;
                        let _g = match self.central_lock.try_lock() {
                            Some(g) => g,
                            None => {
                                central_contended = true;
                                self.central_lock.lock()
                            }
                        };
                        let first = self.head.load(Ordering::Relaxed);
                        let mut last = first;
                        let mut got = 0usize;
                        if !first.is_null() {
                            got = 1;
                            // SAFETY: the lock gives exclusive structural
                            // access; pushers publish fully linked chains
                            // before updating head.
                            unsafe {
                                while got < want && !(*last).next.is_null() {
                                    last = (*last).next;
                                    got += 1;
                                }
                                self.head.store((*last).next, Ordering::Release);
                                (*last).next = ptr::null_mut();
                            }
                        }
                        let _ = got;
                        break 'mainloop (TAG_CHAIN, first);
                    }
                }
                Err(_) => {
                    was_captured = true;
                    break 'mainloop self.await_result(tid);
                }
            }
        };

        let mut grows = 0u64;
        let mut shrinks = 0u64;
        if attempts_made > 0 {
            let frac = me.width_frac.load(Ordering::Relaxed);
            let new = if collisions_won * 2 >= attempts_made {
                (frac * 2).min(256)
            } else if collisions_won == 0 {
                (frac / 2).max(16)
            } else {
                frac
            };
            match new.cmp(&frac) {
                std::cmp::Ordering::Greater => grows += 1,
                std::cmp::Ordering::Less => shrinks += 1,
                std::cmp::Ordering::Equal => {}
            }
            me.width_frac.store(new, Ordering::Relaxed);
        }
        // Depth adaption (see the counter for rationale).
        let engaged = collisions_won > 0 || was_captured || central_contended;
        let dp = me.depth_pref.load(Ordering::Relaxed);
        let new_dp = if engaged {
            (dp + 1).min(levels as usize)
        } else {
            dp.saturating_sub(1)
        };
        match new_dp.cmp(&dp) {
            std::cmp::Ordering::Greater => grows += 1,
            std::cmp::Ordering::Less => shrinks += 1,
            std::cmp::Ordering::Equal => {}
        }
        me.depth_pref.store(new_dp, Ordering::Relaxed);

        // One batched report per operation (roots report tree-wide totals,
        // so each operation is seen exactly once; see the counter funnel).
        if self.sink.is_some() {
            self.report_batch(
                collisions_won,
                central_locks,
                elim_count,
                if !was_captured && central_locks > 0 && !children.is_empty() {
                    sum.unsigned_abs()
                } else {
                    0
                },
                grows,
                shrinks,
            );
        }

        // Distribute results down the tree.
        match tag {
            TAG_DONE => {
                for &(child, _) in &children {
                    self.records[child].result.store(TAG_DONE, Ordering::SeqCst);
                }
                Outcome::Done
            }
            TAG_CHAIN => {
                // Keep the first node for ourselves, then cut one subchain
                // per child (child subtree size = |csum|), in capture order.
                let mine = my_chain;
                let mut rest = if mine.is_null() {
                    ptr::null_mut()
                } else {
                    // SAFETY: we exclusively own the detached chain.
                    unsafe {
                        let r = (*mine).next;
                        (*mine).next = ptr::null_mut();
                        r
                    }
                };
                for &(child, csum) in &children {
                    let need = csum.unsigned_abs() as usize;
                    let chead = rest;
                    if !rest.is_null() {
                        // Walk `need` nodes and cut.
                        // SAFETY: exclusive ownership of `rest`.
                        unsafe {
                            let mut last = rest;
                            let mut taken = 1usize;
                            while taken < need && !(*last).next.is_null() {
                                last = (*last).next;
                                taken += 1;
                            }
                            rest = (*last).next;
                            (*last).next = ptr::null_mut();
                        }
                    }
                    self.records[child]
                        .result
                        .store(chead as u64 | TAG_CHAIN, Ordering::SeqCst);
                }
                debug_assert!(rest.is_null(), "chain longer than tree");
                Outcome::Chain(mine)
            }
            _ => unreachable!("funnel stack result tag"),
        }
    }

    fn await_result(&self, tid: usize) -> (u64, *mut Node<T>) {
        let me = &self.records[tid];
        let backoff = Backoff::new();
        loop {
            let r = me.result.swap(RES_NONE, Ordering::SeqCst);
            if r != RES_NONE {
                let tag = r & 0b111;
                let ptr = (r & !0b111) as *mut Node<T>;
                return (tag, ptr);
            }
            backoff.snooze();
        }
    }

    /// Pops every remaining item (single-threaded teardown helper).
    pub fn drain(&mut self) -> Vec<T> {
        let mut out = Vec::new();
        let mut p = self.head.swap(ptr::null_mut(), Ordering::AcqRel);
        while !p.is_null() {
            // SAFETY: `&mut self` excludes concurrent access.
            let mut node = unsafe { Box::from_raw(p) };
            if let Some(item) = node.item.take() {
                out.push(item);
            }
            p = node.next;
        }
        out
    }
}

impl<T> Drop for FunnelStack<T> {
    fn drop(&mut self) {
        let mut p = self.head.load(Ordering::Relaxed);
        while !p.is_null() {
            // SAFETY: drop has exclusive access; every node in the central
            // chain is owned by the stack.
            let node = unsafe { Box::from_raw(p) };
            p = node.next;
        }
    }
}

impl<T> std::fmt::Debug for FunnelStack<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FunnelStack")
            .field("empty", &self.head.load(Ordering::Relaxed).is_null())
            .field("max_threads", &self.cfg.max_threads)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;
    use std::sync::Arc;
    use std::thread;

    fn cfg(t: usize) -> FunnelConfig {
        FunnelConfig::for_threads(t)
    }

    #[test]
    fn sequential_lifo() {
        let s = FunnelStack::new(cfg(1));
        assert!(s.is_empty());
        assert_eq!(s.pop(0), None);
        s.push(0, 1);
        s.push(0, 2);
        s.push(0, 3);
        assert!(!s.is_empty());
        assert_eq!(s.pop(0), Some(3));
        assert_eq!(s.pop(0), Some(2));
        assert_eq!(s.pop(0), Some(1));
        assert_eq!(s.pop(0), None);
        assert!(s.is_empty());
    }

    #[test]
    fn drop_frees_remaining_items() {
        // Items with Drop: leak checking via Arc strong counts.
        let marker = Arc::new(());
        {
            let s = FunnelStack::new(cfg(1));
            for _ in 0..10 {
                s.push(0, Arc::clone(&marker));
            }
            assert_eq!(Arc::strong_count(&marker), 11);
            drop(s);
        }
        assert_eq!(Arc::strong_count(&marker), 1);
    }

    #[test]
    fn drain_returns_everything() {
        let mut s = FunnelStack::new(cfg(1));
        for i in 0..5 {
            s.push(0, i);
        }
        let mut v = s.drain();
        v.sort_unstable();
        assert_eq!(v, vec![0, 1, 2, 3, 4]);
        assert!(s.is_empty());
    }

    #[test]
    fn concurrent_push_pop_no_loss_no_dup() {
        const T: usize = 8;
        const N: usize = 400;
        let s = Arc::new(FunnelStack::new(cfg(T)));
        let popped = Arc::new(std::sync::Mutex::new(Vec::new()));
        let mut handles = Vec::new();
        for t in 0..T {
            let s = Arc::clone(&s);
            let popped = Arc::clone(&popped);
            handles.push(thread::spawn(move || {
                for i in 0..N {
                    s.push(t, t * N + i);
                    if i % 2 == 1 {
                        if let Some(x) = s.pop(t) {
                            popped.lock().unwrap().push(x);
                        }
                    }
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        let mut all: Vec<usize> = popped.lock().unwrap().clone();
        let mut s = Arc::try_unwrap(s).unwrap_or_else(|_| panic!("stack still shared"));
        all.extend(s.drain());
        assert_eq!(all.len(), T * N, "count preserved");
        let set: HashSet<usize> = all.iter().copied().collect();
        assert_eq!(set.len(), T * N, "no duplicates");
        assert!(set.iter().all(|&x| x < T * N));
    }

    #[test]
    fn heavy_pop_contention_empties_cleanly() {
        const T: usize = 8;
        let s = Arc::new(FunnelStack::new(cfg(T)));
        for i in 0..100 {
            s.push(0, i);
        }
        let counts = Arc::new(std::sync::Mutex::new(Vec::new()));
        let mut handles = Vec::new();
        for t in 0..T {
            let s = Arc::clone(&s);
            let counts = Arc::clone(&counts);
            handles.push(thread::spawn(move || {
                let mut got = Vec::new();
                while let Some(x) = s.pop(t) {
                    got.push(x);
                }
                counts.lock().unwrap().extend(got);
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        let mut v = counts.lock().unwrap().clone();
        v.sort_unstable();
        // Poppers may observe transient emptiness while pushes are absent,
        // but here all pushes happened before spawning, so all 100 items
        // must be recovered.
        assert_eq!(v, (0..100).collect::<Vec<_>>());
        assert!(s.is_empty());
    }
}
