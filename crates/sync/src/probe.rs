//! Low-level event probes for the concurrency substrate.
//!
//! The paper's argument is about *where contention goes* — root counters vs.
//! funnel layers vs. elimination — so the substrate types can report the
//! micro-events that reveal it: CAS retries, collisions won, eliminations,
//! adaption steps, lock acquisitions. Each instrumented structure holds an
//! `Option<SinkRef>`; with `None` (the default) the only cost is one
//! predictable branch per already-expensive operation, and the funnel
//! structures batch their counts so a live sink costs one call per
//! *operation*, not per event.
//!
//! The higher-level `funnelpq` crate layers its `Recorder` API on top of
//! this trait; this module stays dependency-free so the substrate crate
//! does not need to know about queues.

use std::sync::Arc;

/// A countable micro-event observed inside a queue or its substrate.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CounterEvent {
    /// A central compare-and-swap failed and was retried
    /// ([`crate::CasCounter`] retry loop, [`crate::FunnelCounter`] central
    /// CAS).
    CasRetry,
    /// An operation completed by eliminating against a reversing operation
    /// without touching the central structure (counted once per eliminated
    /// operation, by the colliding tree root).
    ElimHit,
    /// An operation that engaged in combining collisions but still had to be
    /// applied at the central structure (counted once per such operation, by
    /// its tree root).
    ElimMiss,
    /// A combining-funnel collision was won: two operation trees merged or
    /// eliminated (counted by the capturing thread).
    FunnelCollision,
    /// Funnel adaption widened its layer slice or deepened its traversal
    /// preference.
    AdaptGrow,
    /// Funnel adaption narrowed its layer slice or shallowed its traversal
    /// preference.
    AdaptShrink,
    /// A lock was acquired (MCS queue locks and the funnel stack's central
    /// lock).
    LockAcquire,
    /// A queue-level `delete_min` found nothing to return.
    EmptyDeleteMin,
    /// A batched queue operation (`insert_batch`, `delete_min_batch`, or
    /// fused `replace_min`) ran — counted once per batch, not per item.
    BatchOp,
    /// A scheduled job was dispatched after its deadline. Recorded by the
    /// `funnelpq-server` serving layer, not by the queues themselves: it is
    /// the product-level signal the relaxation/rank-error tradeoff cashes
    /// out as.
    DeadlineMiss,
    /// A shard dispatcher panicked and its supervisor restarted it
    /// (`funnelpq-server` resilience layer; counted once per restart).
    ShardRestart,
    /// A job that survived a dispatcher panic was requeued — back into the
    /// restarted shard or rerouted to a healthy one (counted per job).
    JobsRequeued,
    /// A job was shed at admission because its deadline was already
    /// unmeetable given the target shard's backlog and dispatch rate
    /// (`funnelpq-server` overload control; counted per shed job).
    JobShed,
    /// The NUMA-adaptive controller flipped a queue between its oblivious
    /// and delegation serving modes (`funnelpq` `NumaPq`; counted once per
    /// switch-over, by the thread that closed the deciding epoch).
    ModeSwitch,
}

impl CounterEvent {
    /// Number of distinct event kinds.
    pub const COUNT: usize = 14;

    /// Every event kind, in a fixed order matching [`CounterEvent::index`].
    pub const ALL: [CounterEvent; CounterEvent::COUNT] = [
        CounterEvent::CasRetry,
        CounterEvent::ElimHit,
        CounterEvent::ElimMiss,
        CounterEvent::FunnelCollision,
        CounterEvent::AdaptGrow,
        CounterEvent::AdaptShrink,
        CounterEvent::LockAcquire,
        CounterEvent::EmptyDeleteMin,
        CounterEvent::BatchOp,
        CounterEvent::DeadlineMiss,
        CounterEvent::ShardRestart,
        CounterEvent::JobsRequeued,
        CounterEvent::JobShed,
        CounterEvent::ModeSwitch,
    ];

    /// Dense index of this event in `0..COUNT` (array-keyed aggregation).
    pub fn index(self) -> usize {
        match self {
            CounterEvent::CasRetry => 0,
            CounterEvent::ElimHit => 1,
            CounterEvent::ElimMiss => 2,
            CounterEvent::FunnelCollision => 3,
            CounterEvent::AdaptGrow => 4,
            CounterEvent::AdaptShrink => 5,
            CounterEvent::LockAcquire => 6,
            CounterEvent::EmptyDeleteMin => 7,
            CounterEvent::BatchOp => 8,
            CounterEvent::DeadlineMiss => 9,
            CounterEvent::ShardRestart => 10,
            CounterEvent::JobsRequeued => 11,
            CounterEvent::JobShed => 12,
            CounterEvent::ModeSwitch => 13,
        }
    }

    /// Stable snake_case name, used as the JSON key in metrics snapshots.
    pub fn name(self) -> &'static str {
        match self {
            CounterEvent::CasRetry => "cas_retry",
            CounterEvent::ElimHit => "elim_hit",
            CounterEvent::ElimMiss => "elim_miss",
            CounterEvent::FunnelCollision => "funnel_collision",
            CounterEvent::AdaptGrow => "adapt_grow",
            CounterEvent::AdaptShrink => "adapt_shrink",
            CounterEvent::LockAcquire => "lock_acquire",
            CounterEvent::EmptyDeleteMin => "empty_delete_min",
            CounterEvent::BatchOp => "batch_op",
            CounterEvent::DeadlineMiss => "deadline_miss",
            CounterEvent::ShardRestart => "shard_restart",
            CounterEvent::JobsRequeued => "jobs_requeued",
            CounterEvent::JobShed => "job_shed",
            CounterEvent::ModeSwitch => "mode_switch",
        }
    }
}

impl std::fmt::Display for CounterEvent {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Receiver for substrate events. Implementations must be cheap and
/// wait-free-ish: sinks are called from inside hot paths (though never while
/// a lock is held by the reporting structure's caller-visible critical
/// section is extended at most by one atomic add).
///
/// Methods take no thread id — locks do not know their caller's dense id —
/// so implementations that shard must derive a shard key themselves (the
/// `funnelpq` `AtomicRecorder` uses a thread-local shard index).
pub trait EventSink: Send + Sync {
    /// Record `n` occurrences of `event`.
    fn event_n(&self, event: CounterEvent, n: u64);

    /// Record one occurrence of `event`.
    fn event(&self, event: CounterEvent) {
        self.event_n(event, 1);
    }

    /// Record one completed lock acquire→hold→release interval, with all
    /// three timestamps from [`funnelpq_util::mono_ns`]:
    /// `wait_start_ns ≤ acquired_ns ≤ released_ns`, wait time being
    /// `acquired - wait_start` and hold time `released - acquired`.
    ///
    /// Default is a no-op so counting-only sinks need not care; locks
    /// call it off the critical path (after the handoff) and only when a
    /// sink is installed, so the uninstrumented cost stays one branch.
    fn lock_span(&self, wait_start_ns: u64, acquired_ns: u64, released_ns: u64) {
        let _ = (wait_start_ns, acquired_ns, released_ns);
    }
}

/// Shared handle to an event sink, as stored by instrumented structures.
pub type SinkRef = Arc<dyn EventSink>;

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU64, Ordering};

    #[derive(Default)]
    struct TestSink {
        counts: [AtomicU64; CounterEvent::COUNT],
    }

    impl EventSink for TestSink {
        fn event_n(&self, event: CounterEvent, n: u64) {
            self.counts[event.index()].fetch_add(n, Ordering::Relaxed);
        }
    }

    #[test]
    fn indices_are_dense_and_match_all() {
        for (i, e) in CounterEvent::ALL.iter().enumerate() {
            assert_eq!(e.index(), i);
        }
    }

    #[test]
    fn names_are_unique() {
        let mut names: Vec<&str> = CounterEvent::ALL.iter().map(|e| e.name()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), CounterEvent::COUNT);
    }

    #[test]
    fn default_event_is_event_n_of_one() {
        let s = TestSink::default();
        s.event(CounterEvent::LockAcquire);
        s.event_n(CounterEvent::LockAcquire, 4);
        assert_eq!(
            s.counts[CounterEvent::LockAcquire.index()].load(Ordering::Relaxed),
            5
        );
    }
}
