//! Shared counters: the abstract operations (Figure 1 of the paper) and two
//! non-combining implementations used as baselines.
//!
//! A *counter* holds an integer and supports fetch-and-increment and
//! fetch-and-decrement; either direction may be *bounded*, meaning the
//! counter never moves past the bound and saturated operations return the
//! bound. The paper's tree-based queues need an unbounded increment and a
//! decrement bounded below by zero.

use std::sync::atomic::{AtomicI64, Ordering};

use funnelpq_util::CachePadded;

use crate::mcs::McsMutex;
use crate::probe::{CounterEvent, SinkRef};

/// Inclusive bounds a counter's value must stay within.
///
/// `None` means unbounded in that direction.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Bounds {
    /// Lower bound: decrements at `lo` return `lo` and do not move the value.
    pub lo: Option<i64>,
    /// Upper bound: increments at `hi` return `hi` and do not move the value.
    pub hi: Option<i64>,
}

impl Bounds {
    /// No bounds in either direction.
    pub fn unbounded() -> Self {
        Bounds::default()
    }

    /// Bounded below by zero — what the priority-queue trees use.
    pub fn non_negative() -> Self {
        Bounds {
            lo: Some(0),
            hi: None,
        }
    }

    pub(crate) fn clamp(&self, v: i64) -> i64 {
        let mut v = v;
        if let Some(lo) = self.lo {
            v = v.max(lo);
        }
        if let Some(hi) = self.hi {
            v = v.min(hi);
        }
        v
    }
}

/// A shared counter supporting (possibly bounded) fetch-and-increment and
/// fetch-and-decrement, accessed by registered thread ids.
///
/// `tid` is a small dense thread index below the structure's configured
/// maximum; concurrent callers must use distinct `tid`s (a shared `tid`
/// cannot corrupt memory but can produce nonsense results).
pub trait SharedCounter: Send + Sync {
    /// Adds one (unless at the upper bound); returns the previous value.
    fn fetch_inc(&self, tid: usize) -> i64;
    /// Subtracts one (unless at the lower bound); returns the previous
    /// value. A return equal to the lower bound means nothing was
    /// decremented.
    fn fetch_dec(&self, tid: usize) -> i64;
    /// Current value. Only meaningful at quiescence.
    fn value(&self) -> i64;
}

/// Counter implemented with a compare-and-swap retry loop on one shared
/// word. The contention behaviour of "the hardware primitive applied
/// directly": fine at low concurrency, a hot spot at high concurrency.
///
/// # Examples
///
/// ```
/// use funnelpq_sync::{Bounds, CasCounter, SharedCounter};
/// let c = CasCounter::new(0, Bounds::non_negative());
/// assert_eq!(c.fetch_dec(0), 0); // saturated at the lower bound
/// assert_eq!(c.fetch_inc(0), 0);
/// assert_eq!(c.value(), 1);
/// ```
pub struct CasCounter {
    val: CachePadded<AtomicI64>,
    bounds: Bounds,
    sink: Option<SinkRef>,
}

impl std::fmt::Debug for CasCounter {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("CasCounter")
            .field("value", &self.value())
            .field("bounds", &self.bounds)
            .finish_non_exhaustive()
    }
}

impl CasCounter {
    /// Creates a counter with the given initial value and bounds.
    ///
    /// # Panics
    ///
    /// Panics if `initial` lies outside `bounds`.
    pub fn new(initial: i64, bounds: Bounds) -> Self {
        Self::with_sink(initial, bounds, None)
    }

    /// Like [`CasCounter::new`], reporting each failed compare-and-swap as a
    /// [`CounterEvent::CasRetry`] (batched per operation) to `sink`.
    ///
    /// # Panics
    ///
    /// Panics if `initial` lies outside `bounds`.
    pub fn with_sink(initial: i64, bounds: Bounds, sink: Option<SinkRef>) -> Self {
        assert_eq!(
            bounds.clamp(initial),
            initial,
            "initial value out of bounds"
        );
        CasCounter {
            val: CachePadded::new(AtomicI64::new(initial)),
            bounds,
            sink,
        }
    }

    fn fetch_add_bounded(&self, delta: i64, stop: Option<i64>) -> i64 {
        let mut retries = 0u64;
        let mut cur = self.val.load(Ordering::Relaxed);
        let out = loop {
            if stop == Some(cur) {
                // Re-validate the saturated read before trusting it.
                let again = self.val.load(Ordering::Acquire);
                if again == cur {
                    break cur;
                }
                cur = again;
                continue;
            }
            match self.val.compare_exchange_weak(
                cur,
                cur + delta,
                Ordering::AcqRel,
                Ordering::Relaxed,
            ) {
                Ok(v) => break v,
                Err(v) => {
                    retries += 1;
                    cur = v;
                }
            }
        };
        if retries > 0 {
            self.note_retries(retries);
        }
        out
    }

    // Out-of-line so the uncontended path pays only a not-taken branch.
    #[cold]
    #[inline(never)]
    fn note_retries(&self, retries: u64) {
        if let Some(s) = &self.sink {
            s.event_n(CounterEvent::CasRetry, retries);
        }
    }
}

impl SharedCounter for CasCounter {
    fn fetch_inc(&self, _tid: usize) -> i64 {
        self.fetch_add_bounded(1, self.bounds.hi)
    }

    fn fetch_dec(&self, _tid: usize) -> i64 {
        self.fetch_add_bounded(-1, self.bounds.lo)
    }

    fn value(&self) -> i64 {
        self.val.load(Ordering::Acquire)
    }
}

/// Counter protected by an MCS queue lock — the implementation the paper's
/// `SimpleTree` uses at every node and `FunnelTree` uses at its deeper,
/// low-traffic nodes.
///
/// # Examples
///
/// ```
/// use funnelpq_sync::{Bounds, LockedCounter, SharedCounter};
/// let c = LockedCounter::new(5, Bounds::unbounded());
/// assert_eq!(c.fetch_dec(0), 5);
/// assert_eq!(c.value(), 4);
/// ```
#[derive(Debug)]
pub struct LockedCounter {
    // Padded because the tree queues allocate these in dense per-node
    // arrays: without it, a thread spinning on one node's lock word drags
    // the neighbouring nodes' lines through the coherence protocol.
    val: CachePadded<McsMutex<i64>>,
    bounds: Bounds,
}

impl LockedCounter {
    /// Creates a counter with the given initial value and bounds.
    ///
    /// # Panics
    ///
    /// Panics if `initial` lies outside `bounds`.
    pub fn new(initial: i64, bounds: Bounds) -> Self {
        Self::with_sink(initial, bounds, None)
    }

    /// Like [`LockedCounter::new`], reporting each lock acquisition as a
    /// [`CounterEvent::LockAcquire`] to `sink`.
    ///
    /// # Panics
    ///
    /// Panics if `initial` lies outside `bounds`.
    pub fn with_sink(initial: i64, bounds: Bounds, sink: Option<SinkRef>) -> Self {
        assert_eq!(
            bounds.clamp(initial),
            initial,
            "initial value out of bounds"
        );
        LockedCounter {
            val: CachePadded::new(McsMutex::with_sink(initial, sink)),
            bounds,
        }
    }
}

impl SharedCounter for LockedCounter {
    fn fetch_inc(&self, _tid: usize) -> i64 {
        let mut v = self.val.lock();
        let old = *v;
        if self.bounds.hi != Some(old) {
            *v = old + 1;
        }
        old
    }

    fn fetch_dec(&self, _tid: usize) -> i64 {
        let mut v = self.val.lock();
        let old = *v;
        if self.bounds.lo != Some(old) {
            *v = old - 1;
        }
        old
    }

    fn value(&self) -> i64 {
        *self.val.lock()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use std::thread;

    fn sequential_contract(c: &dyn SharedCounter) {
        assert_eq!(c.value(), 0);
        assert_eq!(c.fetch_inc(0), 0);
        assert_eq!(c.fetch_inc(0), 1);
        assert_eq!(c.fetch_dec(0), 2);
        assert_eq!(c.fetch_dec(0), 1);
        // At lower bound 0: decrement saturates.
        assert_eq!(c.fetch_dec(0), 0);
        assert_eq!(c.value(), 0);
    }

    #[test]
    fn cas_counter_sequential() {
        sequential_contract(&CasCounter::new(0, Bounds::non_negative()));
    }

    #[test]
    fn locked_counter_sequential() {
        sequential_contract(&LockedCounter::new(0, Bounds::non_negative()));
    }

    #[test]
    fn upper_bound_saturates() {
        let c = CasCounter::new(
            0,
            Bounds {
                lo: Some(0),
                hi: Some(2),
            },
        );
        assert_eq!(c.fetch_inc(0), 0);
        assert_eq!(c.fetch_inc(0), 1);
        assert_eq!(c.fetch_inc(0), 2);
        assert_eq!(c.fetch_inc(0), 2);
        assert_eq!(c.value(), 2);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn initial_out_of_bounds_panics() {
        let _ = CasCounter::new(-1, Bounds::non_negative());
    }

    fn concurrent_net(c: Arc<dyn SharedCounter>, threads: usize, ops: usize) {
        let mut handles = Vec::new();
        for t in 0..threads {
            let c = Arc::clone(&c);
            handles.push(thread::spawn(move || {
                for i in 0..ops {
                    if (t + i) % 2 == 0 {
                        c.fetch_inc(t);
                    } else {
                        c.fetch_dec(t);
                    }
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
    }

    #[test]
    fn cas_counter_unbounded_concurrent_balance() {
        let c: Arc<dyn SharedCounter> = Arc::new(CasCounter::new(0, Bounds::unbounded()));
        concurrent_net(Arc::clone(&c), 8, 1000);
        // 8 threads × 1000 ops, exactly half inc half dec per thread pattern:
        // each thread alternates so nets 0.
        assert_eq!(c.value(), 0);
    }

    #[test]
    fn locked_counter_bounded_never_negative() {
        let c: Arc<dyn SharedCounter> = Arc::new(LockedCounter::new(0, Bounds::non_negative()));
        concurrent_net(Arc::clone(&c), 8, 999);
        assert!(c.value() >= 0);
    }
}
