//! The list-based queue lock of Mellor-Crummey and Scott (TOCS 1991).
//!
//! Each acquiring thread appends a queue node to a tail pointer with an
//! atomic swap and then spins on a flag *in its own node*, so under
//! contention every waiter spins on a distinct cache line and lock handoff
//! causes a single remote write. This is the lock the paper uses for every
//! "bin" and for the non-funnel counters.

use std::cell::UnsafeCell;
use std::ptr;
use std::sync::atomic::{AtomicBool, AtomicPtr, Ordering};

use funnelpq_util::{mono_ns, Backoff, CachePadded};

use crate::probe::{CounterEvent, SinkRef};

struct QNode {
    locked: AtomicBool,
    next: AtomicPtr<QNode>,
}

// The sink rides inside the padded block: acquirers must touch the tail's
// cache line anyway, so keeping the (read-only) sink there costs no extra
// line on the lock fast path while the padding still isolates neighbours.
struct LockInner {
    tail: AtomicPtr<QNode>,
    sink: Option<SinkRef>,
}

/// A raw MCS queue lock (no data). See [`McsMutex`] for the RAII wrapper
/// most callers want.
///
/// # Examples
///
/// ```
/// use funnelpq_sync::McsLock;
/// let lock = McsLock::new();
/// let g = lock.lock();
/// drop(g); // releases
/// ```
pub struct McsLock {
    inner: CachePadded<LockInner>,
}

impl Default for McsLock {
    fn default() -> Self {
        Self::new()
    }
}

impl McsLock {
    /// Creates an unlocked MCS lock.
    pub fn new() -> Self {
        Self::with_sink(None)
    }

    /// Creates an unlocked MCS lock reporting each acquisition as a
    /// [`CounterEvent::LockAcquire`] to `sink` (when present).
    pub fn with_sink(sink: Option<SinkRef>) -> Self {
        McsLock {
            inner: CachePadded::new(LockInner {
                tail: AtomicPtr::new(ptr::null_mut()),
                sink,
            }),
        }
    }

    // Out-of-line so the sink-absent fast path of `lock`/`try_lock` pays
    // only a predictable not-taken branch, not the inlined dyn-call code
    // (measurable on the cheapest queues' ns/op).
    #[cold]
    #[inline(never)]
    fn note_acquire(&self) {
        if let Some(s) = &self.inner.sink {
            s.event(CounterEvent::LockAcquire);
        }
    }

    // Span reporting happens after the handoff in `McsGuard::drop`, so the
    // sink call never extends the critical section.
    #[cold]
    #[inline(never)]
    fn note_span(&self, wait_start_ns: u64, acquired_ns: u64, released_ns: u64) {
        if let Some(s) = &self.inner.sink {
            s.lock_span(wait_start_ns, acquired_ns, released_ns);
        }
    }

    /// Acquires the lock, spinning in FIFO order behind current holders.
    #[inline]
    pub fn lock(&self) -> McsGuard<'_> {
        let wait_start = if self.inner.sink.is_some() {
            self.note_acquire();
            mono_ns()
        } else {
            0
        };
        let node = Box::into_raw(Box::new(QNode {
            locked: AtomicBool::new(true),
            next: AtomicPtr::new(ptr::null_mut()),
        }));
        let pred = self.inner.tail.swap(node, Ordering::AcqRel);
        if !pred.is_null() {
            // SAFETY: `pred` was the previous tail; its owner cannot free it
            // until it has signalled its successor, and it cannot signal us
            // before we link ourselves in below.
            unsafe { (*pred).next.store(node, Ordering::Release) };
            let backoff = Backoff::new();
            // SAFETY: `node` is owned by this call until unlock.
            while unsafe { (*node).locked.load(Ordering::Acquire) } {
                backoff.snooze();
            }
        }
        let stamps = if self.inner.sink.is_some() {
            Some((wait_start, mono_ns()))
        } else {
            None
        };
        McsGuard {
            lock: self,
            node,
            stamps,
        }
    }

    /// Attempts to acquire the lock without waiting. Succeeds only when the
    /// queue is empty.
    #[inline]
    pub fn try_lock(&self) -> Option<McsGuard<'_>> {
        if !self.inner.tail.load(Ordering::Relaxed).is_null() {
            return None;
        }
        let node = Box::into_raw(Box::new(QNode {
            locked: AtomicBool::new(true),
            next: AtomicPtr::new(ptr::null_mut()),
        }));
        match self.inner.tail.compare_exchange(
            ptr::null_mut(),
            node,
            Ordering::AcqRel,
            Ordering::Relaxed,
        ) {
            Ok(_) => {
                let stamps = if self.inner.sink.is_some() {
                    self.note_acquire();
                    // No queueing on the try path: wait == acquire instant.
                    let now = mono_ns();
                    Some((now, now))
                } else {
                    None
                };
                Some(McsGuard {
                    lock: self,
                    node,
                    stamps,
                })
            }
            Err(_) => {
                // SAFETY: `node` never became visible to other threads.
                drop(unsafe { Box::from_raw(node) });
                None
            }
        }
    }

    /// Whether some thread currently holds or waits for the lock. Racy by
    /// nature; useful for heuristics only.
    pub fn is_locked(&self) -> bool {
        !self.inner.tail.load(Ordering::Relaxed).is_null()
    }
}

// SAFETY: the lock protocol only shares heap-allocated queue nodes through
// atomics; the lock itself holds no interior data.
unsafe impl Send for McsLock {}
unsafe impl Sync for McsLock {}

impl std::fmt::Debug for McsLock {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("McsLock")
            .field("locked", &self.is_locked())
            .finish()
    }
}

/// RAII guard for [`McsLock`]; releasing hands the lock to the next queued
/// thread.
pub struct McsGuard<'a> {
    lock: &'a McsLock,
    node: *mut QNode,
    /// `(wait_start_ns, acquired_ns)` when the lock has a sink; the
    /// release stamp completes the span in `drop`.
    stamps: Option<(u64, u64)>,
}

impl Drop for McsGuard<'_> {
    fn drop(&mut self) {
        // Hold time ends here, before the handoff protocol (a successor's
        // linking race is the lock's cost, not this holder's).
        let released = if self.stamps.is_some() { mono_ns() } else { 0 };
        let node = self.node;
        // SAFETY: `node` is this guard's own queue node.
        let next = unsafe { (*node).next.load(Ordering::Acquire) };
        if next.is_null() {
            // No known successor: try to swing the tail back to null.
            if self
                .lock
                .inner
                .tail
                .compare_exchange(node, ptr::null_mut(), Ordering::AcqRel, Ordering::Acquire)
                .is_ok()
            {
                // SAFETY: tail no longer references the node and no
                // successor ever linked in, so we hold the only pointer.
                drop(unsafe { Box::from_raw(node) });
                if let Some((wait, acq)) = self.stamps {
                    self.lock.note_span(wait, acq, released);
                }
                return;
            }
            // A successor swapped the tail but has not linked in yet; wait.
            let backoff = Backoff::new();
            // SAFETY: as above, node is still ours until handoff.
            while unsafe { (*node).next.load(Ordering::Acquire).is_null() } {
                backoff.snooze();
            }
        }
        // SAFETY: re-load is non-null now; the successor node stays alive
        // until *it* unlocks, which cannot happen before this store.
        let next = unsafe { (*node).next.load(Ordering::Acquire) };
        unsafe { (*next).locked.store(false, Ordering::Release) };
        // SAFETY: after signalling, no thread references our node.
        drop(unsafe { Box::from_raw(node) });
        if let Some((wait, acq)) = self.stamps {
            self.lock.note_span(wait, acq, released);
        }
    }
}

/// A value protected by an [`McsLock`], in the style of `std::sync::Mutex`.
///
/// # Examples
///
/// ```
/// use funnelpq_sync::McsMutex;
/// let m = McsMutex::new(vec![1, 2]);
/// m.lock().push(3);
/// assert_eq!(m.lock().len(), 3);
/// ```
pub struct McsMutex<T> {
    lock: McsLock,
    data: UnsafeCell<T>,
}

impl<T> McsMutex<T> {
    /// Wraps `data` in a new mutex.
    pub fn new(data: T) -> Self {
        Self::with_sink(data, None)
    }

    /// Wraps `data` in a mutex whose lock reports acquisitions to `sink`.
    pub fn with_sink(data: T, sink: Option<SinkRef>) -> Self {
        McsMutex {
            lock: McsLock::with_sink(sink),
            data: UnsafeCell::new(data),
        }
    }

    /// Acquires the lock and returns a guard dereferencing to the data.
    pub fn lock(&self) -> McsMutexGuard<'_, T> {
        McsMutexGuard {
            _guard: self.lock.lock(),
            data: self.data.get(),
        }
    }

    /// Attempts to acquire without waiting (fails if any thread is queued).
    pub fn try_lock(&self) -> Option<McsMutexGuard<'_, T>> {
        self.lock.try_lock().map(|g| McsMutexGuard {
            _guard: g,
            data: self.data.get(),
        })
    }

    /// Returns a mutable reference without locking (requires `&mut self`).
    pub fn get_mut(&mut self) -> &mut T {
        self.data.get_mut()
    }

    /// Consumes the mutex and returns the inner value.
    pub fn into_inner(self) -> T {
        self.data.into_inner()
    }
}

// SAFETY: standard mutex reasoning — the guard provides exclusive access.
unsafe impl<T: Send> Send for McsMutex<T> {}
unsafe impl<T: Send> Sync for McsMutex<T> {}

impl<T: std::fmt::Debug> std::fmt::Debug for McsMutex<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("McsMutex")
            .field("locked", &self.lock.is_locked())
            .finish_non_exhaustive()
    }
}

/// Guard for [`McsMutex`].
pub struct McsMutexGuard<'a, T> {
    _guard: McsGuard<'a>,
    data: *mut T,
}

impl<T> std::ops::Deref for McsMutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        // SAFETY: the MCS guard guarantees exclusive access.
        unsafe { &*self.data }
    }
}

impl<T> std::ops::DerefMut for McsMutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        // SAFETY: the MCS guard guarantees exclusive access.
        unsafe { &mut *self.data }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use std::thread;

    #[test]
    fn uncontended_lock_unlock() {
        let l = McsLock::new();
        assert!(!l.is_locked());
        let g = l.lock();
        assert!(l.is_locked());
        drop(g);
        assert!(!l.is_locked());
    }

    #[test]
    fn try_lock_conflicts() {
        let l = McsLock::new();
        let g = l.lock();
        assert!(l.try_lock().is_none());
        drop(g);
        assert!(l.try_lock().is_some());
    }

    #[test]
    fn mutex_counter_stress() {
        const T: usize = 8;
        const N: usize = 2_000;
        let m = Arc::new(McsMutex::new(0u64));
        let mut handles = Vec::new();
        for _ in 0..T {
            let m = Arc::clone(&m);
            handles.push(thread::spawn(move || {
                for _ in 0..N {
                    *m.lock() += 1;
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(*m.lock(), (T * N) as u64);
    }

    #[test]
    fn mutex_into_inner_and_get_mut() {
        let mut m = McsMutex::new(5);
        *m.get_mut() += 1;
        assert_eq!(m.into_inner(), 6);
    }

    #[test]
    fn sink_counts_acquisitions() {
        use crate::probe::{CounterEvent, EventSink};
        use std::sync::atomic::{AtomicU64, Ordering};

        #[derive(Default)]
        struct Count(AtomicU64);
        impl EventSink for Count {
            fn event_n(&self, event: CounterEvent, n: u64) {
                assert_eq!(event, CounterEvent::LockAcquire);
                self.0.fetch_add(n, Ordering::Relaxed);
            }
        }

        let sink = Arc::new(Count::default());
        let m = McsMutex::with_sink(0u32, Some(sink.clone()));
        *m.lock() += 1;
        *m.lock() += 1;
        assert!(m.try_lock().is_some());
        assert_eq!(sink.0.load(Ordering::Relaxed), 3);
    }

    #[test]
    fn sink_sees_ordered_lock_spans() {
        use crate::probe::{CounterEvent, EventSink};
        use std::sync::atomic::{AtomicU64, Ordering};
        use std::sync::Mutex;

        #[derive(Default)]
        struct Spans {
            acquires: AtomicU64,
            spans: Mutex<Vec<(u64, u64, u64)>>,
        }
        impl EventSink for Spans {
            fn event_n(&self, event: CounterEvent, n: u64) {
                assert_eq!(event, CounterEvent::LockAcquire);
                self.acquires.fetch_add(n, Ordering::Relaxed);
            }
            fn lock_span(&self, wait_start_ns: u64, acquired_ns: u64, released_ns: u64) {
                self.spans
                    .lock()
                    .unwrap()
                    .push((wait_start_ns, acquired_ns, released_ns));
            }
        }

        let sink = Arc::new(Spans::default());
        let l = McsLock::with_sink(Some(sink.clone()));
        drop(l.lock());
        let g = l.try_lock().expect("uncontended try_lock");
        std::hint::black_box(&g);
        drop(g);
        let spans = sink.spans.lock().unwrap();
        assert_eq!(spans.len(), 2);
        assert_eq!(spans.len() as u64, sink.acquires.load(Ordering::Relaxed));
        for &(wait, acq, rel) in spans.iter() {
            assert!(wait <= acq && acq <= rel, "span out of order");
        }
        // Spans from one thread lie on one monotonic timeline.
        assert!(spans[0].2 <= spans[1].1);
    }

    #[test]
    fn guards_are_exclusive_across_threads() {
        // Two threads alternate appending; both observe a consistent Vec.
        let m = Arc::new(McsMutex::new(Vec::new()));
        let mut handles = Vec::new();
        for t in 0..2 {
            let m = Arc::clone(&m);
            handles.push(thread::spawn(move || {
                for i in 0..500 {
                    let mut v = m.lock();
                    let len = v.len();
                    v.push((t, i, len));
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        let v = m.lock();
        assert_eq!(v.len(), 1000);
        for (k, &(_, _, len)) in v.iter().enumerate() {
            assert_eq!(k, len, "no two pushes observed the same length");
        }
    }
}
