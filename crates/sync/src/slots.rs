//! Collision-layer slot arrays for the combining funnels, in padded and
//! compact flavours.
//!
//! A funnel layer is an array of word-sized slots that concurrent threads
//! swap their ids through. Densely packed, 16 slots share one 128-byte
//! padding unit, so every collision attempt drags neighbouring slots'
//! lines through the coherence protocol — false sharing on the structure
//! whose whole job is spreading contention. The padded flavour gives each
//! slot its own line; the compact flavour keeps the historical dense
//! layout so the difference stays measurable (`FunnelConfig::pad_slots`,
//! A/B'd in the `native_ops` bench).

use std::sync::atomic::{AtomicUsize, Ordering};

use funnelpq_util::CachePadded;

/// One combining layer's slots: `slot` holds `tid + 1`, or 0 for nobody.
#[derive(Debug)]
pub(crate) enum SlotArray {
    /// One slot per cache line (the default).
    Padded(Box<[CachePadded<AtomicUsize>]>),
    /// Dense slots, multiple per line (the pre-padding layout).
    Compact(Box<[AtomicUsize]>),
}

impl SlotArray {
    pub(crate) fn new(width: usize, padded: bool) -> Self {
        if padded {
            SlotArray::Padded(
                (0..width)
                    .map(|_| CachePadded::new(AtomicUsize::new(0)))
                    .collect(),
            )
        } else {
            SlotArray::Compact((0..width).map(|_| AtomicUsize::new(0)).collect())
        }
    }

    pub(crate) fn len(&self) -> usize {
        match self {
            SlotArray::Padded(s) => s.len(),
            SlotArray::Compact(s) => s.len(),
        }
    }

    #[inline]
    pub(crate) fn swap(&self, slot: usize, val: usize, order: Ordering) -> usize {
        match self {
            SlotArray::Padded(s) => s[slot].swap(val, order),
            SlotArray::Compact(s) => s[slot].swap(val, order),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn both_flavours_swap_and_size() {
        for padded in [true, false] {
            let a = SlotArray::new(4, padded);
            assert_eq!(a.len(), 4);
            assert_eq!(a.swap(2, 7, Ordering::AcqRel), 0);
            assert_eq!(a.swap(2, 9, Ordering::AcqRel), 7);
            assert_eq!(a.swap(3, 1, Ordering::AcqRel), 0);
        }
    }
}
