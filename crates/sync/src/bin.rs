//! The paper's "bin" (Figure 1): an unordered pool of elements guarded by an
//! MCS lock, whose emptiness can be tested with a single read.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicUsize, Ordering};

use crate::mcs::McsMutex;
use crate::probe::SinkRef;

/// Removal order within a bin holding equal-priority items.
///
/// The paper's funnel bins are stacks (LIFO), which enables elimination but
/// "can cause unfairness (and even starvation) among items of equal
/// priority"; it notes FIFO bins as the fair alternative. Lock-based bins
/// support both.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum BinOrder {
    /// Last in, first out (the paper's default).
    #[default]
    Lifo,
    /// First in, first out — fair among equal priorities.
    Fifo,
}

/// An unordered pool of `T` supporting insert, delete-of-unspecified-element
/// and a lock-free emptiness test.
///
/// `is_empty` reads one shared word without taking the lock — the property
/// the paper's `delete-min` scan depends on ("testing for emptiness is much
/// faster than actually trying to remove an element").
///
/// # Examples
///
/// ```
/// use funnelpq_sync::LockBin;
/// let bin = LockBin::new();
/// assert!(bin.is_empty());
/// bin.insert('x');
/// assert_eq!(bin.len(), 1);
/// assert_eq!(bin.delete(), Some('x'));
/// assert_eq!(bin.delete(), None);
/// ```
#[derive(Debug)]
pub struct LockBin<T> {
    items: McsMutex<VecDeque<T>>,
    size: AtomicUsize,
    order: BinOrder,
}

impl<T> LockBin<T> {
    /// Creates an empty LIFO bin.
    pub fn new() -> Self {
        Self::with_order(BinOrder::Lifo)
    }

    /// Creates an empty bin with the given removal order.
    pub fn with_order(order: BinOrder) -> Self {
        Self::with_order_and_sink(order, None)
    }

    /// Creates an empty bin whose lock reports acquisitions
    /// ([`crate::probe::CounterEvent::LockAcquire`]) to `sink`.
    pub fn with_order_and_sink(order: BinOrder, sink: Option<SinkRef>) -> Self {
        LockBin {
            items: McsMutex::with_sink(VecDeque::new(), sink),
            size: AtomicUsize::new(0),
            order,
        }
    }

    /// Adds an element to the bin.
    pub fn insert(&self, item: T) {
        let mut g = self.items.lock();
        g.push_back(item);
        self.size.store(g.len(), Ordering::Release);
    }

    /// Removes and returns an element (per the bin's [`BinOrder`]), or
    /// `None` if the bin is empty.
    pub fn delete(&self) -> Option<T> {
        let mut g = self.items.lock();
        let out = match self.order {
            BinOrder::Lifo => g.pop_back(),
            BinOrder::Fifo => g.pop_front(),
        };
        self.size.store(g.len(), Ordering::Release);
        out
    }

    /// Lock-free emptiness test (a single shared read). May be stale by the
    /// time the caller acts on it, exactly like the paper's `bin-empty`.
    pub fn is_empty(&self) -> bool {
        self.size.load(Ordering::Acquire) == 0
    }

    /// Lock-free size snapshot.
    pub fn len(&self) -> usize {
        self.size.load(Ordering::Acquire)
    }

    /// Drains all elements (used when tearing a queue down).
    pub fn drain(&self) -> Vec<T> {
        let mut g = self.items.lock();
        let out = std::mem::take(&mut *g).into_iter().collect();
        self.size.store(0, Ordering::Release);
        out
    }
}

impl<T> Default for LockBin<T> {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use std::thread;

    #[test]
    fn insert_delete_lifo() {
        let b = LockBin::new();
        b.insert(1);
        b.insert(2);
        assert_eq!(b.len(), 2);
        assert_eq!(b.delete(), Some(2));
        assert_eq!(b.delete(), Some(1));
        assert_eq!(b.delete(), None);
        assert!(b.is_empty());
    }

    #[test]
    fn insert_delete_fifo() {
        let b = LockBin::with_order(BinOrder::Fifo);
        b.insert(1);
        b.insert(2);
        b.insert(3);
        assert_eq!(b.delete(), Some(1));
        assert_eq!(b.delete(), Some(2));
        assert_eq!(b.delete(), Some(3));
        assert_eq!(b.delete(), None);
    }

    #[test]
    fn drain_empties() {
        let b = LockBin::new();
        for i in 0..5 {
            b.insert(i);
        }
        let mut v = b.drain();
        v.sort_unstable();
        assert_eq!(v, vec![0, 1, 2, 3, 4]);
        assert!(b.is_empty());
    }

    #[test]
    fn concurrent_no_loss_no_dup() {
        const T: usize = 8;
        const N: usize = 500;
        let b = Arc::new(LockBin::new());
        let got = Arc::new(McsMutex::new(Vec::new()));
        let mut handles = Vec::new();
        for t in 0..T {
            let b = Arc::clone(&b);
            let got = Arc::clone(&got);
            handles.push(thread::spawn(move || {
                for i in 0..N {
                    b.insert(t * N + i);
                    if i % 2 == 0 {
                        if let Some(x) = b.delete() {
                            got.lock().push(x);
                        }
                    }
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        let mut all = got.lock().clone();
        all.extend(b.drain());
        all.sort_unstable();
        let expect: Vec<usize> = (0..T * N).collect();
        assert_eq!(all, expect, "every insert observed exactly once");
    }

    use crate::mcs::McsMutex;
}
