//! Combining-funnel shared counter (Shavit & Zemach, PODC 1998/1999).
//!
//! A funnel is a stack of *combining layers* — arrays of slots through which
//! concurrent operations locate one another. A processor entering a layer
//! swaps its id into a random slot, reads out whoever was there, and tries
//! to *collide*: it freezes itself and the partner with compare-and-swap on
//! per-thread `location` words. Colliding operations of the same kind
//! combine into a tree whose root carries the summed delta forward;
//! colliding operations of opposite kinds *eliminate* and complete without
//! ever touching the central value. Roots that exit the funnel apply their
//! whole tree to the central counter with a single compare-and-swap and then
//! distribute results back down the tree.
//!
//! Layer discipline keeps trees homogeneous, which §3.3 of the paper shows
//! is required for *bounded* operations (bounded ops do not commute): a tree
//! at layer `d` always has size `2^d` and contains a single operation kind,
//! because advancement to layer `d+1` happens only after combining with an
//! equal-size, same-kind tree at layer `d`.
//!
//! This implementation is quiescently consistent, like the paper's.

use std::sync::atomic::{AtomicI64, AtomicU32, AtomicU64, Ordering};

use funnelpq_util::{AtomicRng, Backoff, CachePadded};

use crate::counter::{Bounds, SharedCounter};
use crate::probe::{CounterEvent, SinkRef};
use crate::slots::SlotArray;

/// Tuning parameters for a combining funnel.
#[derive(Debug, Clone, PartialEq)]
pub struct FunnelConfig {
    /// Width of each combining layer, outermost first. The number of layers
    /// is `widths.len()`; a tree exiting layer `d` has `2^d` operations.
    pub widths: Vec<usize>,
    /// Collision attempts per layer before trying the central value.
    pub attempts: u32,
    /// Spin iterations spent waiting to be collided-with after each attempt,
    /// per layer.
    pub spin: Vec<u32>,
    /// Maximum number of registered threads (dense thread ids `0..max`).
    pub max_threads: usize,
    /// Give every collision slot its own cache line (default `true`).
    /// `false` restores the dense pre-padding layout, where 16 slots share
    /// a padding unit and neighbouring swaps false-share — kept for A/B
    /// measurement in the benches.
    pub pad_slots: bool,
}

impl FunnelConfig {
    /// A reasonable default for up to `max_threads` threads: two layers
    /// sized to the thread count.
    pub fn for_threads(max_threads: usize) -> Self {
        let w0 = (max_threads / 2).max(1);
        let w1 = (max_threads / 4).max(1);
        FunnelConfig {
            widths: vec![w0, w1],
            attempts: 3,
            spin: vec![64, 128],
            max_threads,
            pad_slots: true,
        }
    }

    /// A degenerate funnel with no combining layers: every operation goes
    /// straight to the central compare-and-swap. Useful as a baseline.
    pub fn no_combining(max_threads: usize) -> Self {
        FunnelConfig {
            widths: vec![],
            attempts: 1,
            spin: vec![],
            max_threads,
            pad_slots: true,
        }
    }

    pub(crate) fn validate(&self) {
        assert!(self.max_threads > 0, "max_threads must be positive");
        assert_eq!(
            self.widths.len(),
            self.spin.len(),
            "spin must give one value per layer"
        );
        assert!(
            self.widths.iter().all(|&w| w > 0),
            "layer widths must be positive"
        );
        assert!(self.attempts > 0, "attempts must be positive");
    }
}

/// `location` states beyond layer indices.
const LOC_FROZEN: u64 = u64::MAX - 1;
/// Result word states/tags.
const RES_NONE: u64 = 0;
const TAG_COUNT: u64 = 1;
const TAG_ELIM: u64 = 2;

fn pack_result(tag: u64, v: i64) -> u64 {
    debug_assert!(tag == TAG_COUNT || tag == TAG_ELIM);
    ((v as u64) << 2) | tag
}

fn unpack_result(x: u64) -> (u64, i64) {
    (x & 0b11, (x as i64) >> 2)
}

/// Per-thread collision record. Shared state only; the children list lives
/// in the operation's stack frame.
struct Record {
    /// Layer index this thread is combinable at, or [`LOC_FROZEN`].
    location: CachePadded<AtomicU64>,
    /// Signed size of the tree rooted here (+k for k increments, -k for k
    /// decrements). Stable while frozen.
    sum: AtomicI64,
    /// Packed result delivered by whoever captured us (or by ourselves).
    result: AtomicU64,
    /// Adaption: fraction of the layer width to use, in 1/256ths.
    width_frac: AtomicU32,
    /// Adaption: how many combining layers to traverse before applying to
    /// the central value (0 = straight to the central CAS). Owner-only.
    depth_pref: AtomicU32,
    /// Per-thread xorshift64* slot-selection stream, seeded from the dense
    /// thread id (owner-only; no TLS lookup per collision attempt).
    rng: AtomicRng,
}

impl Record {
    fn new(tid: usize, levels: u32) -> Self {
        Record {
            location: CachePadded::new(AtomicU64::new(LOC_FROZEN)),
            sum: AtomicI64::new(0),
            result: AtomicU64::new(RES_NONE),
            width_frac: AtomicU32::new(256),
            depth_pref: AtomicU32::new(levels),
            rng: AtomicRng::new(tid as u64),
        }
    }
}

/// A combining-funnel counter with optional bounds.
///
/// Supports `fetch_inc` and `fetch_dec` where the decrement (increment) is
/// bounded if the counter was built with a lower (upper) bound — the
/// *bounded fetch-and-decrement* the paper's `FunnelTree` requires, with
/// elimination of concurrent increment/decrement pairs.
///
/// Thread ids must be dense, below `config.max_threads`, and not used
/// concurrently from two threads (that is a logic error, not a memory-safety
/// error).
///
/// # Examples
///
/// ```
/// use funnelpq_sync::{Bounds, FunnelConfig, FunnelCounter, SharedCounter};
/// let c = FunnelCounter::new(0, Bounds::non_negative(), FunnelConfig::for_threads(4));
/// assert_eq!(c.fetch_inc(0), 0);
/// assert_eq!(c.fetch_dec(0), 1);
/// assert_eq!(c.fetch_dec(0), 0); // saturated: nothing to decrement
/// assert_eq!(c.value(), 0);
/// ```
pub struct FunnelCounter {
    cfg: FunnelConfig,
    bounds: Bounds,
    central: CachePadded<AtomicI64>,
    records: Box<[Record]>,
    /// `layers[d]` slot `i` holds `tid + 1`, or 0 for nobody.
    layers: Vec<SlotArray>,
    sink: Option<SinkRef>,
}

impl FunnelCounter {
    // Out-of-line so the sink-absent path pays only a not-taken branch.
    #[cold]
    #[inline(never)]
    fn report_batch(
        &self,
        collisions_won: u32,
        central_fails: u32,
        elim_count: u64,
        elim_miss: u64,
        grows: u64,
        shrinks: u64,
    ) {
        let Some(sink) = &self.sink else { return };
        if collisions_won > 0 {
            sink.event_n(CounterEvent::FunnelCollision, u64::from(collisions_won));
        }
        if central_fails > 0 {
            sink.event_n(CounterEvent::CasRetry, u64::from(central_fails));
        }
        if elim_count > 0 {
            sink.event_n(CounterEvent::ElimHit, elim_count);
        }
        if elim_miss > 0 {
            sink.event_n(CounterEvent::ElimMiss, elim_miss);
        }
        if grows > 0 {
            sink.event_n(CounterEvent::AdaptGrow, grows);
        }
        if shrinks > 0 {
            sink.event_n(CounterEvent::AdaptShrink, shrinks);
        }
    }

    /// Creates a funnel counter.
    ///
    /// # Panics
    ///
    /// Panics if `initial` lies outside `bounds` or the config is invalid.
    pub fn new(initial: i64, bounds: Bounds, cfg: FunnelConfig) -> Self {
        Self::with_sink(initial, bounds, cfg, None)
    }

    /// Like [`FunnelCounter::new`], reporting funnel micro-events to `sink`,
    /// batched per operation: collisions won, central CAS retries,
    /// operations eliminated / combined-but-applied-centrally (counted once,
    /// by the tree root), and adaption steps.
    ///
    /// # Panics
    ///
    /// Panics if `initial` lies outside `bounds` or the config is invalid.
    pub fn with_sink(
        initial: i64,
        bounds: Bounds,
        cfg: FunnelConfig,
        sink: Option<SinkRef>,
    ) -> Self {
        cfg.validate();
        assert_eq!(
            bounds.clamp(initial),
            initial,
            "initial value out of bounds"
        );
        let levels = cfg.widths.len() as u32;
        let records = (0..cfg.max_threads)
            .map(|tid| Record::new(tid, levels))
            .collect();
        let layers = cfg
            .widths
            .iter()
            .map(|&w| SlotArray::new(w, cfg.pad_slots))
            .collect();
        FunnelCounter {
            cfg,
            bounds,
            central: CachePadded::new(AtomicI64::new(initial)),
            records,
            layers,
            sink,
        }
    }

    /// The configured bounds.
    pub fn bounds(&self) -> Bounds {
        self.bounds
    }

    /// Maximum number of thread ids this counter accepts.
    pub fn max_threads(&self) -> usize {
        self.cfg.max_threads
    }

    /// Clamp a distributed per-operation return value to the window bounded
    /// operations may report.
    fn clamp_ret(&self, v: i64) -> i64 {
        self.bounds.clamp(v)
    }

    /// The funnel traversal shared by both operation kinds.
    /// `delta` is +1 (increment) or -1 (decrement).
    fn operate(&self, tid: usize, delta: i64) -> i64 {
        assert!(tid < self.cfg.max_threads, "tid {tid} out of range");
        let me = &self.records[tid];
        let mut sum = delta;
        // (child tid, child subtree sum) in capture order.
        let mut children: Vec<(usize, i64)> = Vec::new();
        let mut d: u64 = 0; // current layer
        let levels = self.layers.len() as u64;
        let mut max_d = u64::from(me.depth_pref.load(Ordering::Relaxed)).min(levels);

        // Local adaption bookkeeping.
        let mut attempts_made = 0u32;
        let mut collisions_won = 0u32;
        let mut central_fails = 0u32;
        let mut was_captured = false;
        // Operations eliminated by this op acting as the colliding root
        // (covers both trees; members never report themselves).
        let mut elim_count = 0u64;

        me.sum.store(sum, Ordering::Relaxed);
        me.result.store(RES_NONE, Ordering::Relaxed);
        me.location.store(d, Ordering::SeqCst);

        let (tag, base) = 'mainloop: loop {
            let mut n = 0;
            while n < self.cfg.attempts && d < max_d {
                n += 1;
                attempts_made += 1;
                let layer = &self.layers[d as usize];
                let frac = me.width_frac.load(Ordering::Relaxed) as usize;
                let wid = ((layer.len() * frac) / 256).clamp(1, layer.len());
                let slot = me.rng.below(wid as u64) as usize;
                let q = layer.swap(slot, tid + 1, Ordering::AcqRel);
                if q != 0 && q - 1 != tid {
                    let q = q - 1;
                    // Freeze myself so nobody captures me mid-collision.
                    if me
                        .location
                        .compare_exchange(d, LOC_FROZEN, Ordering::SeqCst, Ordering::SeqCst)
                        .is_err()
                    {
                        // Someone captured me first.
                        was_captured = true;
                        break 'mainloop self.await_result(tid);
                    }
                    let qr = &self.records[q];
                    if qr
                        .location
                        .compare_exchange(d, LOC_FROZEN, Ordering::SeqCst, Ordering::SeqCst)
                        .is_ok()
                    {
                        collisions_won += 1;
                        // q is frozen at our layer, so its tree has our size.
                        let qsum = qr.sum.load(Ordering::SeqCst);
                        debug_assert_eq!(qsum.abs(), sum.abs());
                        if qsum == -sum {
                            // Reversing operations: eliminate both trees.
                            let val = self.central.load(Ordering::SeqCst);
                            // Pick a plausible adjacent (inc, dec) pairing
                            // that stays within bounds: dec observes `dv`,
                            // inc observes `dv - 1`.
                            let mut dv = val;
                            if self.bounds.lo == Some(dv) {
                                dv += 1;
                            }
                            if let Some(hi) = self.bounds.hi {
                                dv = dv.min(hi);
                            }
                            let (my_v, q_v) = if sum < 0 { (dv, dv - 1) } else { (dv - 1, dv) };
                            elim_count = sum.unsigned_abs() * 2;
                            qr.result
                                .store(pack_result(TAG_ELIM, q_v), Ordering::SeqCst);
                            break 'mainloop (TAG_ELIM, my_v);
                        }
                        // Same kind: combine; q's tree becomes our child.
                        sum += qsum;
                        me.sum.store(sum, Ordering::SeqCst);
                        children.push((q, qsum));
                        d += 1;
                        me.location.store(d, Ordering::SeqCst);
                        n = 0;
                        continue;
                    }
                    // Failed to capture q: unfreeze, stay at this layer.
                    me.location.store(d, Ordering::SeqCst);
                }
                // Delay, watching for someone to capture us.
                let spin = self.cfg.spin[d as usize];
                for _ in 0..spin {
                    if me.location.load(Ordering::SeqCst) != d {
                        was_captured = true;
                        break 'mainloop self.await_result(tid);
                    }
                    std::hint::spin_loop();
                }
            }
            // Try to apply the whole tree to the central value.
            match me
                .location
                .compare_exchange(d, LOC_FROZEN, Ordering::SeqCst, Ordering::SeqCst)
            {
                Ok(_) => {
                    let val = self.central.load(Ordering::SeqCst);
                    let new = self.bounds.clamp(val + sum);
                    if self
                        .central
                        .compare_exchange(val, new, Ordering::SeqCst, Ordering::SeqCst)
                        .is_ok()
                    {
                        break 'mainloop (TAG_COUNT, val);
                    }
                    // Central contention: allow deeper combining on retry.
                    central_fails += 1;
                    max_d = (max_d + 1).min(levels);
                    me.location.store(d, Ordering::SeqCst);
                }
                Err(_) => {
                    was_captured = true;
                    break 'mainloop self.await_result(tid);
                }
            }
        };

        // Adapt the slice of the layer widths we use to the observed load.
        let mut grows = 0u64;
        let mut shrinks = 0u64;
        if attempts_made > 0 {
            let frac = me.width_frac.load(Ordering::Relaxed);
            let new = if collisions_won * 2 >= attempts_made {
                (frac.saturating_mul(2)).min(256)
            } else if collisions_won == 0 {
                (frac / 2).max(16)
            } else {
                frac
            };
            match new.cmp(&frac) {
                std::cmp::Ordering::Greater => grows += 1,
                std::cmp::Ordering::Less => shrinks += 1,
                std::cmp::Ordering::Equal => {}
            }
            me.width_frac.store(new, Ordering::Relaxed);
        }
        // Depth adaption: engagement argues for traversing layers; a clean
        // solo pass argues for going straight to the central CAS.
        let engaged = collisions_won > 0 || was_captured || central_fails > 0;
        let dp = me.depth_pref.load(Ordering::Relaxed);
        let new_dp = if engaged {
            (dp + 1).min(levels as u32)
        } else {
            dp.saturating_sub(1)
        };
        match new_dp.cmp(&dp) {
            std::cmp::Ordering::Greater => grows += 1,
            std::cmp::Ordering::Less => shrinks += 1,
            std::cmp::Ordering::Equal => {}
        }
        me.depth_pref.store(new_dp, Ordering::Relaxed);

        // One batched report per operation. Eliminated / centrally-applied
        // operation totals are reported by the tree root only, so sinks see
        // each operation exactly once.
        if self.sink.is_some() {
            self.report_batch(
                collisions_won,
                central_fails,
                elim_count,
                if !was_captured && tag == TAG_COUNT && !children.is_empty() {
                    sum.unsigned_abs()
                } else {
                    0
                },
                grows,
                shrinks,
            );
        }

        // Distribute results to the trees we captured.
        let my_ret = match tag {
            TAG_ELIM => {
                // Everyone in an eliminated tree reports the same plausible
                // value (the paper's interleaved inc/dec ordering).
                for &(child, _) in &children {
                    self.records[child]
                        .result
                        .store(pack_result(TAG_ELIM, base), Ordering::SeqCst);
                }
                self.clamp_ret(base)
            }
            TAG_COUNT => {
                let mut total = delta;
                for &(child, csum) in &children {
                    self.records[child]
                        .result
                        .store(pack_result(TAG_COUNT, base + total), Ordering::SeqCst);
                    total += csum;
                }
                self.clamp_ret(base)
            }
            _ => unreachable!("funnel result tag"),
        };
        my_ret
    }

    /// Wait (frozen) until our capturer hands us a result.
    fn await_result(&self, tid: usize) -> (u64, i64) {
        let me = &self.records[tid];
        let backoff = Backoff::new();
        loop {
            let r = me.result.swap(RES_NONE, Ordering::SeqCst);
            if r != RES_NONE {
                return unpack_result(r);
            }
            backoff.snooze();
        }
    }
}

impl SharedCounter for FunnelCounter {
    fn fetch_inc(&self, tid: usize) -> i64 {
        self.operate(tid, 1)
    }

    fn fetch_dec(&self, tid: usize) -> i64 {
        self.operate(tid, -1)
    }

    fn value(&self) -> i64 {
        self.central.load(Ordering::SeqCst)
    }
}

impl std::fmt::Debug for FunnelCounter {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FunnelCounter")
            .field("value", &self.value())
            .field("layers", &self.layers.len())
            .field("max_threads", &self.cfg.max_threads)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use std::thread;

    fn cfg(threads: usize) -> FunnelConfig {
        FunnelConfig::for_threads(threads)
    }

    #[test]
    fn sequential_inc_dec() {
        let c = FunnelCounter::new(0, Bounds::non_negative(), cfg(1));
        assert_eq!(c.fetch_inc(0), 0);
        assert_eq!(c.fetch_inc(0), 1);
        assert_eq!(c.value(), 2);
        assert_eq!(c.fetch_dec(0), 2);
        assert_eq!(c.fetch_dec(0), 1);
        assert_eq!(c.fetch_dec(0), 0);
        assert_eq!(c.fetch_dec(0), 0);
        assert_eq!(c.value(), 0);
    }

    #[test]
    fn no_combining_config_works() {
        let c = FunnelCounter::new(10, Bounds::unbounded(), FunnelConfig::no_combining(2));
        assert_eq!(c.fetch_dec(0), 10);
        assert_eq!(c.fetch_inc(1), 9);
        assert_eq!(c.value(), 10);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn tid_out_of_range_panics() {
        let c = FunnelCounter::new(0, Bounds::unbounded(), cfg(2));
        c.fetch_inc(2);
    }

    #[test]
    fn concurrent_increments_all_counted() {
        const T: usize = 8;
        const N: i64 = 500;
        let c = Arc::new(FunnelCounter::new(0, Bounds::unbounded(), cfg(T)));
        let handles: Vec<_> = (0..T)
            .map(|t| {
                let c = Arc::clone(&c);
                thread::spawn(move || {
                    for _ in 0..N {
                        c.fetch_inc(t);
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(c.value(), T as i64 * N);
    }

    #[test]
    fn concurrent_mixed_balances_via_elimination() {
        // Equal inc/dec counts: the central value must return to start even
        // though many pairs eliminate without touching it.
        const T: usize = 8;
        const N: usize = 500;
        let c = Arc::new(FunnelCounter::new(1_000, Bounds::unbounded(), cfg(T)));
        let handles: Vec<_> = (0..T)
            .map(|t| {
                let c = Arc::clone(&c);
                thread::spawn(move || {
                    for _ in 0..N {
                        if t % 2 == 0 {
                            c.fetch_inc(t);
                        } else {
                            c.fetch_dec(t);
                        }
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(c.value(), 1_000);
    }

    #[test]
    fn bounded_dec_never_goes_below_zero() {
        const T: usize = 8;
        const N: usize = 400;
        let c = Arc::new(FunnelCounter::new(0, Bounds::non_negative(), cfg(T)));
        let handles: Vec<_> = (0..T)
            .map(|t| {
                let c = Arc::clone(&c);
                thread::spawn(move || {
                    let mut mins = i64::MAX;
                    for i in 0..N {
                        let v = if (t + i) % 3 == 0 {
                            c.fetch_inc(t)
                        } else {
                            c.fetch_dec(t)
                        };
                        mins = mins.min(v);
                    }
                    assert!(mins >= 0, "returned value below the lower bound");
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert!(c.value() >= 0);
    }

    #[test]
    fn returned_values_are_within_plausible_range() {
        // With I incs and D decs from initial V (unbounded), every returned
        // value must lie in [V - D, V + I].
        const T: usize = 6;
        const N: usize = 300;
        let c = Arc::new(FunnelCounter::new(0, Bounds::unbounded(), cfg(T)));
        let handles: Vec<_> = (0..T)
            .map(|t| {
                let c = Arc::clone(&c);
                thread::spawn(move || {
                    for i in 0..N {
                        let v = if i % 2 == 0 {
                            c.fetch_inc(t)
                        } else {
                            c.fetch_dec(t)
                        };
                        let limit = (T * N) as i64;
                        assert!(v.abs() <= limit);
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(c.value(), 0);
    }
}
