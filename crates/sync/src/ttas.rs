//! Test-and-test-and-set spin lock with exponential backoff.
//!
//! The classic centralized spin lock: cheap when uncontended, a textbook
//! hot spot when not. Used as a baseline and for rarely contended internals.

use std::cell::UnsafeCell;
use std::sync::atomic::{AtomicBool, Ordering};

use funnelpq_util::{Backoff, CachePadded};

/// A test-and-test-and-set spin lock protecting a value.
///
/// # Examples
///
/// ```
/// use funnelpq_sync::TtasMutex;
/// let m = TtasMutex::new(0u32);
/// *m.lock() += 1;
/// assert_eq!(*m.lock(), 1);
/// ```
pub struct TtasMutex<T> {
    flag: CachePadded<AtomicBool>,
    data: UnsafeCell<T>,
}

impl<T> TtasMutex<T> {
    /// Wraps `data` in a new unlocked spin lock.
    pub fn new(data: T) -> Self {
        TtasMutex {
            flag: CachePadded::new(AtomicBool::new(false)),
            data: UnsafeCell::new(data),
        }
    }

    /// Spins (reading locally, backing off exponentially) until acquired.
    pub fn lock(&self) -> TtasGuard<'_, T> {
        let backoff = Backoff::new();
        loop {
            // Test before test-and-set: spin on a cached read.
            while self.flag.load(Ordering::Relaxed) {
                backoff.snooze();
            }
            if self
                .flag
                .compare_exchange_weak(false, true, Ordering::Acquire, Ordering::Relaxed)
                .is_ok()
            {
                return TtasGuard { lock: self };
            }
        }
    }

    /// Single acquisition attempt.
    pub fn try_lock(&self) -> Option<TtasGuard<'_, T>> {
        if self
            .flag
            .compare_exchange(false, true, Ordering::Acquire, Ordering::Relaxed)
            .is_ok()
        {
            Some(TtasGuard { lock: self })
        } else {
            None
        }
    }

    /// Whether the lock is currently held (racy; heuristics only).
    pub fn is_locked(&self) -> bool {
        self.flag.load(Ordering::Relaxed)
    }

    /// Returns a mutable reference without locking (requires `&mut self`).
    pub fn get_mut(&mut self) -> &mut T {
        self.data.get_mut()
    }

    /// Consumes the lock, returning the protected value.
    pub fn into_inner(self) -> T {
        self.data.into_inner()
    }
}

// SAFETY: standard mutex reasoning — the guard provides exclusive access.
unsafe impl<T: Send> Send for TtasMutex<T> {}
unsafe impl<T: Send> Sync for TtasMutex<T> {}

impl<T: std::fmt::Debug> std::fmt::Debug for TtasMutex<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TtasMutex")
            .field("locked", &self.is_locked())
            .finish_non_exhaustive()
    }
}

/// RAII guard for [`TtasMutex`].
pub struct TtasGuard<'a, T> {
    lock: &'a TtasMutex<T>,
}

impl<T> Drop for TtasGuard<'_, T> {
    fn drop(&mut self) {
        self.lock.flag.store(false, Ordering::Release);
    }
}

impl<T> std::ops::Deref for TtasGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        // SAFETY: guard holds the lock.
        unsafe { &*self.lock.data.get() }
    }
}

impl<T> std::ops::DerefMut for TtasGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        // SAFETY: guard holds the lock.
        unsafe { &mut *self.lock.data.get() }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use std::thread;

    #[test]
    fn basic() {
        let m = TtasMutex::new(1);
        assert!(!m.is_locked());
        {
            let mut g = m.lock();
            *g = 2;
            assert!(m.is_locked());
            assert!(m.try_lock().is_none());
        }
        assert_eq!(*m.lock(), 2);
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn counter_stress() {
        const T: usize = 8;
        const N: usize = 2_000;
        let m = Arc::new(TtasMutex::new(0u64));
        let handles: Vec<_> = (0..T)
            .map(|_| {
                let m = Arc::clone(&m);
                thread::spawn(move || {
                    for _ in 0..N {
                        *m.lock() += 1;
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(*m.lock(), (T * N) as u64);
    }
}
