//! `pqstat` — live stats surface for the funnelpq-server scheduler.
//!
//! Drives a `server_load`-style closed-loop workload (bursty hot-tenant
//! skew, one-shot + periodic jobs) against a chosen queue backend and
//! prints the scheduler's [`TelemetrySnapshot`]: per-tenant and per-shard
//! latency/slack histograms, the windowed throughput/depth time-series,
//! and the sampled rank-error estimate (nonzero only for relaxed
//! backends — a strict backend's drains are sorted, so it scores exactly
//! zero).
//!
//! Examples:
//!
//! ```text
//! cargo run --release -p funnelpq-server --example pqstat
//! cargo run --release -p funnelpq-server --example pqstat -- \
//!     --backend SingleLock --duration-ms 500 --out pqstat.json
//! cargo run --release -p funnelpq-server --example pqstat -- --watch
//! ```
//!
//! One-shot mode runs the workload for `--duration-ms`, then prints the
//! final snapshot JSON (stdout, or `--out`). `--watch` additionally
//! prints a one-line summary every `--interval-ms` while the load runs.

use std::process::ExitCode;
use std::str::FromStr;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use funnelpq::{Algorithm, PqConfig};
use funnelpq_server::{Deadline, JobSpec, RetryPolicy, Scheduler, ServerConfig, TenantId};
use funnelpq_util::XorShift64Star;

const USAGE: &str = "\
pqstat — run a scheduler workload and print its live telemetry snapshot

USAGE:
    cargo run --release -p funnelpq-server --example pqstat -- [OPTIONS]

OPTIONS:
    --backend <NAME>     queue backend (SingleLock, FunnelTree, MultiQueue, ...)
                         [default: MultiQueue]
    --duration-ms <N>    how long to drive the workload    [default: 1000]
    --watch              print a summary line every interval while running
    --interval-ms <N>    watch-mode refresh period         [default: 250]
    --out <PATH>         write the final snapshot JSON to a file
                         [default: stdout]
    --seed <N>           workload RNG seed                 [default: 48879]
    -h, --help           show this help
";

struct Args {
    backend: Algorithm,
    duration: Duration,
    watch: bool,
    interval: Duration,
    out: Option<String>,
    seed: u64,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        backend: Algorithm::MultiQueue,
        duration: Duration::from_millis(1000),
        watch: false,
        interval: Duration::from_millis(250),
        out: None,
        seed: 0xBEEF,
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        if flag == "-h" || flag == "--help" {
            return Err(String::new());
        }
        if flag == "--watch" {
            args.watch = true;
            continue;
        }
        let value = it.next().ok_or_else(|| format!("{flag} needs a value"))?;
        let ms = |what: &str, v: &str| -> Result<u64, String> {
            v.parse().map_err(|_| format!("bad {what}: {v:?}"))
        };
        match flag.as_str() {
            "--backend" => args.backend = Algorithm::from_str(&value)?,
            "--duration-ms" => args.duration = Duration::from_millis(ms("duration", &value)?),
            "--interval-ms" => args.interval = Duration::from_millis(ms("interval", &value)?),
            "--out" => args.out = Some(value),
            "--seed" => args.seed = ms("seed", &value)?,
            other => return Err(format!("unknown flag {other:?}")),
        }
    }
    Ok(args)
}

// The server_load geometry: shallow per-tenant quotas keep the MultiQueue's
// internal heaps short, so drain batches cross heap boundaries and the
// rank-error estimator sees genuine relaxation.
const SHARDS: usize = 4;
const TENANTS: u32 = 8;
const CLIENTS: usize = 4;
const BANDS: usize = 8192;
const CAPACITY: usize = 128;
const QUOTA: usize = 16;
const SERVICE_NS: u64 = 100_000;

fn config(backend: PqConfig) -> ServerConfig {
    ServerConfig {
        shards: SHARDS,
        tenants: TENANTS as usize,
        clients: CLIENTS,
        bands: BANDS,
        horizon_ns: 60_000_000_000,
        backend,
        drain_batch: 8,
        global_capacity: CAPACITY,
        tenant_quota: QUOTA,
        service_ns: SERVICE_NS,
        telemetry_window_ns: 100_000_000,
        affinity: (0..TENANTS)
            .map(|t| (TenantId(t), t as usize % SHARDS))
            .collect(),
        ..ServerConfig::default()
    }
}

/// One closed-loop client: submit until admission pushes back, then back
/// off under the house [`RetryPolicy`] (jittered exponential, honouring
/// the server's shed hints). 30% of submissions hit the hot tenant 0;
/// every tenth job is periodic.
fn client_loop(s: &Scheduler, client: usize, seed: u64, stop: &AtomicBool) -> u64 {
    let mut rng = XorShift64Star::new(seed ^ ((client as u64) << 40));
    let mut retry = RetryPolicy::new(20_000, 2_000_000, seed ^ ((client as u64) << 24));
    let mut sent = 0u64;
    let mut k = 0u64;
    while !stop.load(Ordering::Acquire) {
        let tenant = if rng.below(10) < 3 {
            TenantId(0)
        } else {
            TenantId(rng.below(u64::from(TENANTS)) as u32)
        };
        let slack_ns = 2_000_000 + rng.below(50_000_000);
        let spec = if k.is_multiple_of(10) {
            JobSpec::periodic(tenant, Deadline::In(slack_ns), k, 10_000_000, 2)
        } else {
            JobSpec::once(tenant, Deadline::In(slack_ns), k)
        };
        k += 1;
        match s.submit(client, spec) {
            Ok(_) => {
                sent += 1;
                retry.note_ok();
            }
            Err(e) => match retry.next_delay(&e) {
                Some(delay) => std::thread::sleep(delay),
                // Permanent (stopped scheduler, config): retrying is futile.
                None => break,
            },
        }
    }
    sent
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(msg) => {
            if msg.is_empty() {
                print!("{USAGE}");
                return ExitCode::SUCCESS;
            }
            eprintln!("error: {msg}\n\n{USAGE}");
            return ExitCode::FAILURE;
        }
    };
    let backend = match PqConfig::for_algorithm(args.backend) {
        Some(b) => b,
        None => {
            eprintln!("error: {} is simulator-only", args.backend.name());
            return ExitCode::FAILURE;
        }
    };
    let s = match Scheduler::new(config(backend)) {
        Ok(s) => Arc::new(s),
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::FAILURE;
        }
    };
    s.start();

    let stop = Arc::new(AtomicBool::new(false));
    let clients: Vec<_> = (0..CLIENTS)
        .map(|client| {
            let s = Arc::clone(&s);
            let stop = Arc::clone(&stop);
            let seed = args.seed;
            std::thread::spawn(move || client_loop(&s, client, seed, &stop))
        })
        .collect();

    let until = Instant::now() + args.duration;
    while Instant::now() < until {
        let tick = args
            .interval
            .min(until.saturating_duration_since(Instant::now()));
        std::thread::sleep(tick);
        if args.watch {
            let t = s.telemetry();
            let numa = match t.numa_mode() {
                Some(mode) => format!(" numa={mode} switches={}", t.mode_switches()),
                None => String::new(),
            };
            eprintln!(
                "[{:>6.0}ms] dispatched={} misses={} depth={} rank_err={:.3} windows={}{numa}",
                t.at_ns as f64 / 1e6,
                t.dispatched(),
                t.misses(),
                t.depth(),
                t.rank_error_mean(),
                t.windows.len(),
            );
        }
    }

    stop.store(true, Ordering::Release);
    let sent: u64 = clients.into_iter().map(|h| h.join().unwrap()).sum();
    while s.in_flight() > 0 {
        std::thread::sleep(Duration::from_millis(1));
    }
    let snapshot = s.telemetry();
    let report = s.stop();
    if args.watch {
        eprintln!(
            "done: submitted={sent} dispatched={} miss_rate={:.5}",
            report.dispatched,
            report.miss_rate(),
        );
    }
    let json = snapshot.to_json();
    match &args.out {
        Some(path) => {
            if let Err(e) = std::fs::write(path, json + "\n") {
                eprintln!("error: writing {path}: {e}");
                return ExitCode::FAILURE;
            }
            eprintln!("wrote {path}");
        }
        None => println!("{json}"),
    }
    ExitCode::SUCCESS
}
