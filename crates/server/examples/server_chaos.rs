//! Chaos sweep for the server resilience layer: seeded [`FaultPlan`]s
//! (dispatcher panics, stalls, admission bursts) × strict and relaxed
//! backends, each run audited for conservation — every admitted job
//! dispatched exactly once, zero lost while a healthy shard exists, no
//! process abort — and the sweep written to `CHAOS_server.json` for CI's
//! `server-chaos` job. Exits nonzero if any run violates the audit.
//!
//! ```text
//! cargo run --release --example server_chaos
//! ```

use std::collections::HashSet;
use std::sync::Arc;
use std::time::Duration;

use funnelpq::{MultiQueueConfig, PqConfig};
use funnelpq_server::{
    Deadline, FaultPlan, JobSpec, Scheduler, ServerConfig, ServerError, ServerReport, StopOutcome,
    TenantId,
};
use funnelpq_util::json::{JsonWriter, SCHEMA_VERSION};
use funnelpq_util::XorShift64Star;

const SHARDS: usize = 2;
const TENANTS: usize = 8;
const CLIENTS: usize = 4;
const JOBS_PER_CLIENT: u64 = 250;

struct Plan {
    label: &'static str,
    build: fn(u64) -> FaultPlan,
    /// Panics the plan injects (the audit expects exactly this many).
    panics: u64,
}

fn plans() -> Vec<Plan> {
    vec![
        Plan {
            label: "panic",
            build: |seed| {
                FaultPlan::new(seed)
                    .dispatcher_panic(0, 20)
                    .dispatcher_panic(1, 35)
            },
            panics: 2,
        },
        Plan {
            label: "stall_burst",
            build: |seed| {
                FaultPlan::new(seed)
                    .dispatcher_stall(0, 10, 2_000_000)
                    .dispatcher_stall(1, 10, 2_000_000)
                    .admission_burst(100, 64, 1_000_000_000)
            },
            panics: 0,
        },
    ]
}

fn backends() -> Vec<(&'static str, PqConfig)> {
    vec![
        ("SingleLock", PqConfig::SingleLock),
        (
            "FunnelTree",
            PqConfig::for_algorithm(funnelpq::Algorithm::FunnelTree).unwrap(),
        ),
        (
            "MultiQueue_f4",
            PqConfig::MultiQueue(MultiQueueConfig {
                factor: 4,
                ..MultiQueueConfig::default()
            }),
        ),
    ]
}

fn run_one(backend: &PqConfig, plan: &Plan, seed: u64) -> ServerReport {
    let cfg = ServerConfig {
        shards: SHARDS,
        tenants: TENANTS,
        clients: CLIENTS,
        bands: 512,
        horizon_ns: 2_000_000_000,
        backend: backend.clone(),
        drain_batch: 8,
        global_capacity: 2048,
        tenant_quota: 512,
        service_ns: 1, // unpaced: the sweep audits recovery, not timing
        record_dispatches: true,
        // Pin tenants round-robin so both shards see traffic and every
        // per-shard fault trigger is guaranteed to fire.
        affinity: (0..TENANTS as u32)
            .map(|t| (TenantId(t), t as usize % SHARDS))
            .collect(),
        fault_plan: Some((plan.build)(seed)),
        ..ServerConfig::default()
    };
    let s = Arc::new(Scheduler::new(cfg).unwrap());
    s.start();
    let base = s.now_ns();
    let handles: Vec<_> = (0..CLIENTS)
        .map(|client| {
            let s = Arc::clone(&s);
            std::thread::spawn(move || {
                let mut rng = XorShift64Star::new(seed ^ (client as u64) << 32);
                for k in 0..JOBS_PER_CLIENT {
                    let tenant = TenantId(rng.below(TENANTS as u64) as u32);
                    let deadline = Deadline::At(base + 1_000_000 + rng.below(1_000_000_000));
                    match s.submit(client, JobSpec::once(tenant, deadline, k)) {
                        Ok(_) | Err(ServerError::Admit(_)) => {}
                        Err(other) => panic!("unexpected submit error: {other}"),
                    }
                }
            })
        })
        .collect();
    for h in handles {
        h.join().unwrap();
    }
    let mut spins = 0;
    while s.in_flight() > 0 {
        std::thread::sleep(Duration::from_millis(1));
        spins += 1;
        assert!(spins < 30_000, "scheduler failed to drain");
    }
    s.stop()
}

/// The conservation audit. Returns violation strings (empty = clean).
fn audit(label: &str, plan: &Plan, report: &ServerReport) -> Vec<String> {
    let mut v = Vec::new();
    let mut check = |ok: bool, msg: String| {
        if !ok {
            v.push(format!("{label}: {msg}"));
        }
    };
    check(
        report.panics == plan.panics,
        format!("expected {} panics, saw {}", plan.panics, report.panics),
    );
    check(report.lost == 0, format!("lost {} jobs", report.lost));
    check(
        report.in_flight_at_stop == 0,
        format!("{} slots leaked", report.in_flight_at_stop),
    );
    check(
        report.admitted == report.completed,
        format!(
            "admitted {} != completed {}",
            report.admitted, report.completed
        ),
    );
    // Exactly-once: one unique dispatch-log entry per admitted job.
    let mut seen = HashSet::new();
    let mut firings = 0u64;
    let mut dup = 0u64;
    for shard in &report.shards {
        for rec in &shard.dispatch_log {
            if !seen.insert(rec.job) {
                dup += 1;
            }
            firings += 1;
        }
    }
    check(dup == 0, format!("{dup} jobs dispatched more than once"));
    check(
        firings == report.dispatched && seen.len() as u64 == report.admitted,
        format!(
            "dispatch log ({firings} firings, {} unique) disagrees with report \
             (dispatched {}, admitted {})",
            seen.len(),
            report.dispatched,
            report.admitted
        ),
    );
    for stop in &report.stops {
        let ok = match (&stop.outcome, plan.panics) {
            (StopOutcome::Clean, 0) => true,
            (StopOutcome::Recovered { .. }, p) if p > 0 => true,
            _ => false,
        };
        check(
            ok,
            format!("shard {} unexpected outcome {:?}", stop.shard, stop.outcome),
        );
    }
    v
}

fn main() {
    // Injected panics are the point of the sweep: keep their default-hook
    // backtraces out of the log, but let any genuine panic print.
    let default_hook = std::panic::take_hook();
    std::panic::set_hook(Box::new(move |info| {
        let injected = info
            .payload()
            .downcast_ref::<String>()
            .is_some_and(|m| m.starts_with("injected:"));
        if !injected {
            default_hook(info);
        }
    }));

    let seeds = [0xC0FFEE_u64, 0xBEEF, 0x5EED];
    let mut violations = Vec::new();
    let mut rows = Vec::new();

    for (bname, backend) in backends() {
        for plan in plans() {
            for seed in seeds {
                let report = run_one(&backend, &plan, seed);
                let label = format!("{bname}/{}/s{seed:x}", plan.label);
                violations.extend(audit(&label, &plan, &report));
                println!(
                    "{label:<34} submitted {:>5}  completed {:>5}  panics {}  restarts {}  \
                     requeued {:>3}  lost {}",
                    report.submitted,
                    report.completed,
                    report.panics,
                    report.restarts,
                    report.requeued,
                    report.lost
                );
                rows.push((bname, plan.label, seed, report));
            }
        }
    }

    let mut w = JsonWriter::spaced();
    w.begin_obj(true);
    w.field_u64("schema_version", u64::from(SCHEMA_VERSION));
    w.field_str("suite", "server_chaos");
    w.field_u64("shards", SHARDS as u64);
    w.field_u64("clients", CLIENTS as u64);
    w.field_u64("jobs_per_client", JOBS_PER_CLIENT);
    w.key("runs");
    w.begin_arr(true);
    for (bname, plan, seed, r) in &rows {
        w.begin_obj(false);
        w.field_str("backend", bname);
        w.field_str("plan", plan);
        w.field_u64("seed", *seed);
        w.field_u64("submitted", r.submitted);
        w.field_u64("admitted", r.admitted);
        w.field_u64("completed", r.completed);
        w.field_u64("dispatched", r.dispatched);
        w.field_u64("panics", r.panics);
        w.field_u64("restarts", r.restarts);
        w.field_u64("requeued", r.requeued);
        w.field_u64("lost", r.lost);
        w.field_u64("shed", r.shed);
        w.key("clean_stop");
        w.bool(r.stops.iter().all(|s| {
            !matches!(
                s.outcome,
                StopOutcome::GaveUp { .. } | StopOutcome::SupervisorLost { .. }
            )
        }));
        w.end();
    }
    w.end();
    w.end();
    let mut out = w.finish();
    out.push('\n');

    let root = concat!(env!("CARGO_MANIFEST_DIR"), "/../..");
    let path = format!("{root}/CHAOS_server.json");
    match std::fs::write(&path, out) {
        Ok(()) => println!("wrote {path}"),
        Err(e) => {
            violations.push(format!("could not write {path}: {e}"));
        }
    }

    if !violations.is_empty() {
        eprintln!("\nchaos sweep FAILED:");
        for v in &violations {
            eprintln!("  - {v}");
        }
        std::process::exit(1);
    }
    println!("\nchaos sweep clean: {} runs, zero lost jobs", rows.len());
}
