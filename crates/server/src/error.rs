//! Typed server errors: admission rejections and everything beneath them.
//!
//! The server never panics on load: every refusal carries the rejected
//! [`Job`] back to the caller (same ownership contract as
//! [`funnelpq::PqError::into_item`]), and every queue-layer failure arrives
//! as the unified [`funnelpq::Error`] so one `?` covers construction,
//! insertion, and batch paths.

use crate::job::{Job, TenantId};

/// Why admission control refused a job. Carries the job back so the caller
/// can retry, shed, or requeue it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AdmitError {
    /// The tenant already has `quota` jobs in flight.
    TenantQuota {
        /// The tenant whose quota is exhausted.
        tenant: TenantId,
        /// The per-tenant in-flight quota.
        quota: usize,
        /// The rejected job.
        job: Job,
    },
    /// The scheduler as a whole already has `capacity` jobs in flight.
    Capacity {
        /// The global in-flight capacity.
        capacity: usize,
        /// The rejected job.
        job: Job,
    },
    /// `tenant` is outside the configured dense range
    /// (`0..ServerConfig::tenants`).
    TenantOutOfRange {
        /// The offending tenant.
        tenant: TenantId,
        /// The configured tenant count.
        tenants: usize,
        /// The rejected job.
        job: Job,
    },
    /// Overload control shed the job: its deadline is unmeetable given the
    /// target shard's backlog and measured dispatch rate, so admitting it
    /// would only burn a slot on a guaranteed miss. The server's own
    /// drain-time estimate rides along as a backpressure hint
    /// ([`crate::RetryPolicy`] honours it).
    Retry {
        /// The server's estimate of when the backlog will have drained
        /// enough for the job to be worth resubmitting, in nanoseconds
        /// from now.
        after_ns: u64,
        /// The shed job.
        job: Job,
    },
}

impl AdmitError {
    /// Recovers the rejected job.
    pub fn into_job(self) -> Job {
        match self {
            AdmitError::TenantQuota { job, .. }
            | AdmitError::Capacity { job, .. }
            | AdmitError::TenantOutOfRange { job, .. }
            | AdmitError::Retry { job, .. } => job,
        }
    }
}

impl std::fmt::Display for AdmitError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            AdmitError::TenantQuota { tenant, quota, .. } => {
                write!(f, "{tenant} at quota ({quota} jobs in flight)")
            }
            AdmitError::Capacity { capacity, .. } => {
                write!(f, "scheduler at capacity ({capacity} jobs in flight)")
            }
            AdmitError::TenantOutOfRange {
                tenant, tenants, ..
            } => write!(f, "{tenant} out of range (tenants {tenants})"),
            AdmitError::Retry { after_ns, .. } => {
                write!(f, "shed: deadline unmeetable, retry in {after_ns}ns")
            }
        }
    }
}

impl std::error::Error for AdmitError {}

/// Any error the scheduler can hand a caller.
#[non_exhaustive]
#[derive(Debug, Clone, PartialEq)]
pub enum ServerError {
    /// Admission control refused the job (quota, capacity, unknown
    /// tenant); the job rides inside.
    Admit(AdmitError),
    /// The queue layer refused: construction ([`funnelpq::BuildError`]) or
    /// an insert rejection carrying the job.
    Queue(funnelpq::Error<Job>),
    /// The scheduler is stopping; the job was not accepted.
    Stopped {
        /// The rejected job.
        job: Job,
    },
    /// The [`crate::ServerConfig`] itself is unusable.
    Config {
        /// What was wrong.
        reason: &'static str,
    },
    /// A shard index was out of range — an affinity pin (or a
    /// [`crate::Router::pin`] call) named a shard the router does not have.
    InvalidShard {
        /// The offending shard index.
        shard: usize,
        /// The configured shard count.
        shards: usize,
    },
    /// Every shard that could serve the job has gone dark (its dispatcher
    /// exhausted the restart budget); the job was not accepted.
    NoHealthyShard {
        /// The rejected job.
        job: Job,
    },
}

impl ServerError {
    /// Recovers the rejected job, when this error carries one (build and
    /// config errors do not).
    pub fn into_job(self) -> Option<Job> {
        match self {
            ServerError::Admit(e) => Some(e.into_job()),
            ServerError::Queue(e) => e.into_items().pop(),
            ServerError::Stopped { job } | ServerError::NoHealthyShard { job } => Some(job),
            ServerError::Config { .. } | ServerError::InvalidShard { .. } => None,
        }
    }
}

impl From<AdmitError> for ServerError {
    fn from(e: AdmitError) -> Self {
        ServerError::Admit(e)
    }
}

impl From<funnelpq::Error<Job>> for ServerError {
    fn from(e: funnelpq::Error<Job>) -> Self {
        ServerError::Queue(e)
    }
}

impl From<funnelpq::BuildError> for ServerError {
    fn from(e: funnelpq::BuildError) -> Self {
        ServerError::Queue(e.into())
    }
}

impl From<funnelpq::PqError<Job>> for ServerError {
    fn from(e: funnelpq::PqError<Job>) -> Self {
        ServerError::Queue(e.into())
    }
}

impl std::fmt::Display for ServerError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServerError::Admit(e) => write!(f, "admission: {e}"),
            ServerError::Queue(e) => write!(f, "queue: {e}"),
            ServerError::Stopped { .. } => write!(f, "scheduler is stopping"),
            ServerError::Config { reason } => write!(f, "config: {reason}"),
            ServerError::InvalidShard { shard, shards } => {
                write!(f, "shard {shard} out of range (shards {shards})")
            }
            ServerError::NoHealthyShard { .. } => write!(f, "no healthy shard available"),
        }
    }
}

impl std::error::Error for ServerError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ServerError::Admit(e) => Some(e),
            ServerError::Queue(e) => Some(e),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn job(id: u64) -> Job {
        Job {
            id,
            tenant: TenantId(1),
            deadline_ns: 100,
            payload: 7,
            period_ns: 0,
            repeats_left: 0,
            enqueued_ns: 0,
            enqueued_slot: 0,
        }
    }

    #[test]
    fn admit_errors_carry_the_job_back() {
        let e = AdmitError::TenantQuota {
            tenant: TenantId(1),
            quota: 4,
            job: job(9),
        };
        assert!(e.to_string().contains("tenant1 at quota (4"));
        assert_eq!(e.into_job().id, 9);
    }

    #[test]
    fn server_error_recovers_jobs_through_every_layer() {
        let e: ServerError = AdmitError::Capacity {
            capacity: 10,
            job: job(1),
        }
        .into();
        assert_eq!(e.into_job().map(|j| j.id), Some(1));

        // A queue-level rejection arrives as the unified funnelpq::Error
        // and still hands the job back.
        let e: ServerError = funnelpq::PqError::CapacityExhausted { item: job(2) }.into();
        assert_eq!(e.clone().into_job().map(|j| j.id), Some(2));
        assert!(e.to_string().starts_with("queue: "));

        let e: ServerError = funnelpq::BuildError::ZeroPriorities.into();
        assert_eq!(e.into_job(), None);

        let e = ServerError::Stopped { job: job(3) };
        assert_eq!(e.into_job().map(|j| j.id), Some(3));
    }

    #[test]
    fn resilience_errors_are_typed() {
        let e = AdmitError::Retry {
            after_ns: 5_000,
            job: job(4),
        };
        assert!(e.to_string().contains("retry in 5000ns"));
        assert_eq!(e.into_job().id, 4);

        let e = ServerError::InvalidShard {
            shard: 9,
            shards: 4,
        };
        assert_eq!(e.to_string(), "shard 9 out of range (shards 4)");
        assert_eq!(e.into_job(), None);

        let e = ServerError::NoHealthyShard { job: job(5) };
        assert_eq!(e.to_string(), "no healthy shard available");
        assert_eq!(e.into_job().map(|j| j.id), Some(5));
    }
}
