//! The sharded scheduler: N shards, each a priority queue plus one
//! dispatcher thread, behind admission control and a tenant router.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use funnelpq::obs::{CounterEvent, NoopRecorder, Recorder};
use funnelpq::{PqBuilder, PqConfig};
use funnelpq_util::{Acc, CachePadded};

use crate::admission::Admission;
use crate::error::ServerError;
use crate::job::{Deadline, Job, JobId, JobSpec, TenantId};
use crate::router::Router;
use crate::shard::{DispatchRecord, Shard, ShardReport};
use crate::telemetry::{ShardTelemetry, TelemetrySnapshot, RANK_SAMPLE_PERIOD};

/// Everything that shapes a [`Scheduler`], with workable defaults.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Number of shards (one queue + one dispatcher thread each).
    pub shards: usize,
    /// Number of tenants; tenant ids must lie in `0..tenants`.
    pub tenants: usize,
    /// Number of client (submitter) threads; each shard's queue is built
    /// with `clients + 1` thread slots — clients use their own id, the
    /// shard's dispatcher uses id `clients`.
    pub clients: usize,
    /// Number of deadline bands (= queue priorities). Deadlines within
    /// `0..horizon_ns` map linearly onto bands; later deadlines clamp to
    /// the last band.
    pub bands: usize,
    /// The deadline horizon the bands cover, in nanoseconds from the
    /// scheduler's epoch.
    pub horizon_ns: u64,
    /// Which queue algorithm (and its typed knobs) backs every shard.
    pub backend: PqConfig,
    /// How many jobs a dispatcher drains per `delete_min_batch` episode.
    pub drain_batch: usize,
    /// Global in-flight capacity across all tenants.
    pub global_capacity: usize,
    /// Per-tenant in-flight quota.
    pub tenant_quota: usize,
    /// Nominal per-job service time in nanoseconds. Dispatchers pace
    /// themselves at one job per `service_ns`, so the shard's virtual
    /// service clock tracks wall time and a deadline's slack is worth
    /// `(deadline - enqueue) / service_ns` dispatch slots. `1` effectively
    /// disables pacing (pure-throughput tests).
    pub service_ns: u64,
    /// Record a [`DispatchRecord`] per dispatch (conservation/ordering
    /// tests). Off by default: it grows a Vec per shard without bound.
    pub record_dispatches: bool,
    /// Width of one telemetry time-series window, in nanoseconds (the
    /// throughput/miss/depth series in [`TelemetrySnapshot`]).
    pub telemetry_window_ns: u64,
    /// Tenants to pin to explicit shards, overriding the hash placement.
    pub affinity: Vec<(TenantId, usize)>,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            shards: 4,
            tenants: 16,
            clients: 4,
            bands: 256,
            horizon_ns: 5_000_000_000,
            backend: PqConfig::SingleLock,
            drain_batch: 16,
            global_capacity: 4096,
            tenant_quota: 256,
            service_ns: 10_000,
            record_dispatches: false,
            telemetry_window_ns: 100_000_000,
            affinity: Vec::new(),
        }
    }
}

impl ServerConfig {
    fn validate(&self) -> Result<(), ServerError> {
        let reason = if self.shards == 0 {
            "shards must be >= 1"
        } else if self.tenants == 0 {
            "tenants must be >= 1"
        } else if self.clients == 0 {
            "clients must be >= 1"
        } else if self.bands == 0 {
            "bands must be >= 1"
        } else if self.horizon_ns == 0 {
            "horizon_ns must be >= 1"
        } else if self.drain_batch == 0 {
            "drain_batch must be >= 1"
        } else if self.global_capacity == 0 {
            "global_capacity must be >= 1"
        } else if self.tenant_quota == 0 {
            "tenant_quota must be >= 1"
        } else if self.service_ns == 0 {
            "service_ns must be >= 1"
        } else if self.telemetry_window_ns == 0 {
            "telemetry_window_ns must be >= 1"
        } else if self
            .affinity
            .iter()
            .any(|(t, s)| *s >= self.shards || t.0 as usize >= self.tenants)
        {
            "affinity pin out of range"
        } else {
            return Ok(());
        };
        Err(ServerError::Config { reason })
    }
}

/// What a stopped scheduler hands back: merged shard accounting plus the
/// admission tallies.
#[derive(Debug, Clone, Default)]
pub struct ServerReport {
    /// Per-shard reports, indexed by shard.
    pub shards: Vec<ShardReport>,
    /// Jobs submitted (including rejected ones).
    pub submitted: u64,
    /// Jobs admitted past quota + capacity.
    pub admitted: u64,
    /// Jobs refused for per-tenant quota.
    pub rejected_quota: u64,
    /// Jobs refused for global capacity.
    pub rejected_capacity: u64,
    /// Total dispatches across shards (each periodic firing counts).
    pub dispatched: u64,
    /// Jobs fully completed (periodic jobs count once, on their last
    /// firing). Equals `admitted` once the system is quiesced.
    pub completed: u64,
    /// Dispatches that missed their deadline on the virtual service clock.
    pub misses: u64,
    /// Periodic re-arms performed via the fused `replace_min`.
    pub rearmed: u64,
    /// Merged wall-clock enqueue→dispatch latency (nanoseconds).
    pub latency_ns: Acc,
    /// Merged dispatch-slot delay histogram.
    pub delay_slots: Acc,
    /// Wall-clock nanoseconds between `start()` and `stop()`.
    pub run_ns: u64,
    /// Jobs still admitted-but-undispatched at stop (0 when callers
    /// quiesce clients before stopping, as the conservation contract asks).
    pub in_flight_at_stop: u64,
}

impl ServerReport {
    /// Deadline-miss rate over all dispatches, in `[0, 1]`.
    pub fn miss_rate(&self) -> f64 {
        if self.dispatched == 0 {
            0.0
        } else {
            self.misses as f64 / self.dispatched as f64
        }
    }
}

/// A sharded job scheduler over `funnelpq` priority queues.
///
/// Construction is fully typed: the backend arrives as a [`PqConfig`] and
/// every refusal — bad config, unbuildable queue, quota, capacity — is a
/// [`ServerError`], never a panic. See `docs/SERVER.md` for the
/// architecture and the deadline-miss metric.
///
/// Lifecycle: [`Scheduler::new`] → [`Scheduler::submit`] (any thread,
/// before or after) → [`Scheduler::start`] → quiesce clients →
/// [`Scheduler::stop`] → [`ServerReport`]. Submitting after `stop` has
/// begun returns [`ServerError::Stopped`] with the job.
pub struct Scheduler<R: Recorder = NoopRecorder> {
    cfg: ServerConfig,
    shards: Vec<Arc<Shard>>,
    router: Router,
    admission: Arc<Admission>,
    epoch: Instant,
    next_id: CachePadded<AtomicU64>,
    stopping: Arc<AtomicBool>,
    handles: Mutex<Vec<JoinHandle<ShardReport>>>,
    started_at: Mutex<Option<Instant>>,
    recorder: Arc<R>,
}

impl Scheduler<NoopRecorder> {
    /// Builds a scheduler with the default (zero-cost) recorder.
    pub fn new(cfg: ServerConfig) -> Result<Self, ServerError> {
        Scheduler::with_recorder(cfg, Arc::new(NoopRecorder))
    }
}

impl<R: Recorder> Scheduler<R> {
    /// Builds a scheduler whose shard queues and deadline-miss counter feed
    /// `recorder`.
    pub fn with_recorder(cfg: ServerConfig, recorder: Arc<R>) -> Result<Self, ServerError> {
        cfg.validate()?;
        let mut shards = Vec::with_capacity(cfg.shards);
        for _ in 0..cfg.shards {
            // One thread slot per client plus one for the dispatcher.
            let queue = PqBuilder::from_config(cfg.backend.clone(), cfg.bands, cfg.clients + 1)
                .recorder(Arc::clone(&recorder))
                .try_build::<Job>()?;
            shards.push(Arc::new(Shard {
                queue: Arc::from(queue),
                dispatched: CachePadded::new(AtomicU64::new(0)),
                enqueued: CachePadded::new(AtomicU64::new(0)),
                telemetry: Mutex::new(ShardTelemetry::new(cfg.tenants, cfg.telemetry_window_ns)),
            }));
        }
        let mut router = Router::new(cfg.shards, cfg.tenants);
        for (tenant, shard) in &cfg.affinity {
            router.pin(*tenant, *shard);
        }
        let admission = Arc::new(Admission::new(
            cfg.tenants,
            cfg.tenant_quota,
            cfg.global_capacity,
        ));
        Ok(Scheduler {
            cfg,
            shards,
            router,
            admission,
            epoch: Instant::now(),
            next_id: CachePadded::new(AtomicU64::new(0)),
            stopping: Arc::new(AtomicBool::new(false)),
            handles: Mutex::new(Vec::new()),
            started_at: Mutex::new(None),
            recorder,
        })
    }

    /// Nanoseconds since this scheduler's epoch — the clock deadlines are
    /// expressed against.
    pub fn now_ns(&self) -> u64 {
        self.epoch.elapsed().as_nanos() as u64
    }

    /// The shard that serves `tenant` (hash placement unless pinned).
    pub fn route(&self, tenant: TenantId) -> usize {
        self.router.route(tenant)
    }

    /// The configuration this scheduler was built from.
    pub fn config(&self) -> &ServerConfig {
        &self.cfg
    }

    /// Jobs currently admitted but not yet finally dispatched.
    pub fn in_flight(&self) -> usize {
        self.admission.in_flight()
    }

    fn band_of(&self, deadline_ns: u64) -> usize {
        let b = (deadline_ns as u128 * self.cfg.bands as u128) / self.cfg.horizon_ns as u128;
        (b as usize).min(self.cfg.bands - 1)
    }

    /// Submits `spec` on behalf of client thread `client`
    /// (`0..config().clients`). Routes to the tenant's shard, admits
    /// against quota and capacity, and files the job under its deadline
    /// band. Every refusal carries the stamped job back.
    pub fn submit(&self, client: usize, spec: JobSpec) -> Result<JobId, ServerError> {
        if client >= self.cfg.clients {
            return Err(ServerError::Config {
                reason: "client id out of range",
            });
        }
        let shard = &self.shards[self.router.route(spec.tenant)];
        let id = self.next_id.fetch_add(1, Ordering::Relaxed);
        let enqueued_ns = self.now_ns();
        // A relative deadline resolves against the enqueue stamp itself,
        // so the promised slack cannot be eroded by anything that happened
        // before the submit landed.
        let deadline_ns = match spec.deadline {
            Deadline::At(t) => t,
            Deadline::In(d) => enqueued_ns.saturating_add(d),
        };
        let job = Job {
            id,
            tenant: spec.tenant,
            deadline_ns,
            payload: spec.payload,
            period_ns: spec.period_ns,
            repeats_left: spec.repeats,
            enqueued_ns,
            enqueued_slot: shard.dispatched.load(Ordering::Acquire),
        };
        if self.stopping.load(Ordering::Acquire) {
            return Err(ServerError::Stopped { job });
        }
        self.admission.try_admit(job)?;
        let band = self.band_of(job.deadline_ns);
        // Depth goes up *before* the insert (and back down on failure) so
        // the dispatcher's decrement for this job can never observe the
        // counter below the true population.
        shard.enqueued.fetch_add(1, Ordering::Relaxed);
        if let Err(e) = shard.queue.try_insert(client, band, job) {
            shard.enqueued.fetch_sub(1, Ordering::Relaxed);
            self.admission.release(job.tenant.0 as usize);
            return Err(e.into());
        }
        Ok(id)
    }

    /// Takes a live telemetry snapshot: per-shard and per-tenant
    /// histograms, the windowed time-series, queue depths, and the sampled
    /// rank-error estimate. Safe to call at any point in the lifecycle,
    /// including while dispatchers run (each shard's cell is read under a
    /// briefly-held lock; cross-shard totals may be a few dispatches
    /// apart).
    pub fn telemetry(&self) -> TelemetrySnapshot {
        let at_ns = self.now_ns();
        let per_shard = self
            .shards
            .iter()
            .map(|s| {
                (
                    s.telemetry.lock().unwrap().clone(),
                    s.enqueued.load(Ordering::Relaxed),
                )
            })
            .collect();
        TelemetrySnapshot::assemble(
            at_ns,
            self.cfg.backend.algorithm().name(),
            self.cfg.telemetry_window_ns,
            per_shard,
        )
    }

    /// Spawns one dispatcher thread per shard. Idempotent: calling again
    /// while running is a no-op.
    pub fn start(&self) {
        let mut handles = self.handles.lock().unwrap();
        if !handles.is_empty() {
            return;
        }
        *self.started_at.lock().unwrap() = Some(Instant::now());
        for (i, shard) in self.shards.iter().enumerate() {
            let ctx = DispatcherCtx {
                epoch: self.epoch,
                shard: Arc::clone(shard),
                stopping: Arc::clone(&self.stopping),
                admission: Arc::clone(&self.admission),
                recorder: Arc::clone(&self.recorder),
                index: i,
                tid: self.cfg.clients,
                drain: self.cfg.drain_batch,
                service_ns: self.cfg.service_ns,
                bands: self.cfg.bands,
                horizon_ns: self.cfg.horizon_ns,
                record_dispatches: self.cfg.record_dispatches,
            };
            handles.push(
                std::thread::Builder::new()
                    .name(format!("funnelpq-shard-{i}"))
                    .spawn(move || ctx.run())
                    .expect("spawn dispatcher thread"),
            );
        }
    }

    /// Stops the dispatchers and merges their reports. Callers should
    /// quiesce client threads first (the conservation contract
    /// `admitted == completed` holds only once no submits race the stop);
    /// anything still queued is counted in
    /// [`ServerReport::in_flight_at_stop`].
    pub fn stop(&self) -> ServerReport {
        self.stopping.store(true, Ordering::Release);
        let handles = std::mem::take(&mut *self.handles.lock().unwrap());
        let run_ns = self
            .started_at
            .lock()
            .unwrap()
            .take()
            .map_or(0, |t| t.elapsed().as_nanos() as u64);
        let mut report = ServerReport {
            submitted: self.next_id.load(Ordering::Relaxed),
            admitted: self.admission.admitted(),
            rejected_quota: self.admission.rejected_quota(),
            rejected_capacity: self.admission.rejected_capacity(),
            run_ns,
            ..ServerReport::default()
        };
        for h in handles {
            let s = h.join().expect("dispatcher thread panicked");
            report.dispatched += s.dispatched;
            report.completed += s.completed;
            report.misses += s.misses;
            report.rearmed += s.rearmed;
            report.latency_ns.merge(&s.latency_ns);
            report.delay_slots.merge(&s.delay_slots);
            report.shards.push(s);
        }
        report.in_flight_at_stop = self.admission.in_flight() as u64;
        report
    }
}

/// Everything one dispatcher thread owns or shares.
struct DispatcherCtx<R: Recorder> {
    /// The scheduler's epoch: the clock [`Job::enqueued_ns`] and deadlines
    /// are stamped against.
    epoch: Instant,
    shard: Arc<Shard>,
    stopping: Arc<AtomicBool>,
    admission: Arc<Admission>,
    recorder: Arc<R>,
    index: usize,
    tid: usize,
    drain: usize,
    service_ns: u64,
    bands: usize,
    horizon_ns: u64,
    record_dispatches: bool,
}

impl<R: Recorder> DispatcherCtx<R> {
    fn band_of(&self, deadline_ns: u64) -> usize {
        let b = (deadline_ns as u128 * self.bands as u128) / self.horizon_ns as u128;
        (b as usize).min(self.bands - 1)
    }

    /// The dispatcher loop: drain a batch, account each job, re-arm
    /// periodic ones via the fused `replace_min`, pace at `service_ns` per
    /// job. Exits once the stop flag is up *and* a drain came back empty.
    fn run(self) -> ShardReport {
        let mut report = ShardReport::new(self.index);
        let mut out: Vec<(usize, Job)> = Vec::with_capacity(self.drain.max(1) * 2);
        // Rank-error sampling only makes sense when a drain batch is an
        // en-bloc snapshot of the queue (see `telemetry` module docs).
        let track_rank = self.shard.queue.ordered_batch_drain();
        let mut episode: u64 = 0;
        // The pacing clock: each dispatch pushes it service_ns further out,
        // and we spin up to it, so sustained throughput is one job per
        // service_ns and the virtual clock tracks wall time.
        let mut next_ready = Instant::now();
        loop {
            out.clear();
            let got = self
                .shard
                .queue
                .delete_min_batch(self.tid, self.drain, &mut out);
            if got == 0 {
                if self.stopping.load(Ordering::Acquire) {
                    break;
                }
                next_ready = Instant::now();
                std::thread::sleep(Duration::from_micros(20));
                continue;
            }
            self.shard.enqueued.fetch_sub(got as u64, Ordering::Relaxed);
            episode += 1;
            if track_rank && episode.is_multiple_of(RANK_SAMPLE_PERIOD) && got >= 2 {
                // Score the batch before the index-walk below: replace_min
                // re-arms append to `out`, and those entries are not part
                // of the drained snapshot.
                self.shard
                    .telemetry
                    .lock()
                    .unwrap()
                    .record_rank_sample(&out[..got]);
            }
            // replace_min below may append the entry it popped; index-walk
            // so those are dispatched in the same episode.
            let mut i = 0;
            while i < out.len() {
                let (_band, job) = out[i];
                i += 1;
                self.dispatch(job, &mut report, &mut out);
                next_ready += Duration::from_nanos(self.service_ns);
                Self::pace(next_ready);
            }
        }
        report
    }

    fn dispatch(&self, job: Job, report: &mut ShardReport, out: &mut Vec<(usize, Job)>) {
        let pre = self.shard.dispatched.fetch_add(1, Ordering::AcqRel);
        report.dispatched += 1;
        let now = self.epoch.elapsed().as_nanos() as u64;
        let latency = now.saturating_sub(job.enqueued_ns);
        report.latency_ns.record(latency);
        let delay = pre.saturating_sub(job.enqueued_slot);
        report.delay_slots.record(delay);
        let slack = job.deadline_ns.saturating_sub(job.enqueued_ns) / self.service_ns;
        // A miss must be late on BOTH clocks. Virtual-only lateness can be
        // manufactured by a client stalling between stamping the job and
        // finishing the insert (dispatches pass, slack doesn't move);
        // wall-only lateness by the dispatcher itself being preempted (the
        // virtual clock freezes with it). The conjunction leaves exactly
        // the backend-caused lateness: queueing and ordering error.
        let missed = delay > slack && now > job.deadline_ns;
        if missed {
            report.misses += 1;
            if R::ENABLED {
                self.recorder.record_event(CounterEvent::DeadlineMiss);
            }
        }
        if self.record_dispatches {
            report.dispatch_log.push(DispatchRecord {
                job: job.id,
                tenant: job.tenant,
                band: self.band_of(job.deadline_ns),
                deadline_ns: job.deadline_ns,
                missed,
            });
        }
        // This thread is the telemetry cell's only writer, so the lock is
        // uncontended except against an occasional snapshot reader.
        {
            let mut t = self.shard.telemetry.lock().unwrap();
            t.record_dispatch(&job, now, latency, missed);
            t.windows
                .record_depth(now, self.shard.enqueued.load(Ordering::Relaxed));
        }
        let rearm =
            job.period_ns > 0 && job.repeats_left > 0 && !self.stopping.load(Ordering::Acquire);
        if rearm {
            report.rearmed += 1;
            // Fixed-rate while on time, fixed-delay once late: re-arming
            // from max(deadline, now) keeps every firing's slack at least
            // one full period, so a host stall cannot manufacture a string
            // of impossible deadlines (no thundering catch-up).
            let next = Job {
                deadline_ns: job.deadline_ns.max(now).saturating_add(job.period_ns),
                repeats_left: job.repeats_left - 1,
                enqueued_ns: now,
                enqueued_slot: self.shard.dispatched.load(Ordering::Acquire),
                ..job
            };
            // Fused fast path: the re-insert and the next delete-min share
            // one synchronization episode; whatever it popped joins the
            // in-progress batch.
            let band = self.band_of(next.deadline_ns);
            self.shard.enqueued.fetch_add(1, Ordering::Relaxed);
            if let Some(popped) = self.shard.queue.replace_min(self.tid, band, next) {
                // The popped job left the queue and joins this episode's
                // batch, so the re-arm was depth-neutral.
                self.shard.enqueued.fetch_sub(1, Ordering::Relaxed);
                out.push(popped);
            }
        } else {
            report.completed += 1;
            self.admission.release(job.tenant.0 as usize);
        }
    }

    /// Wait until `deadline`; no-op once the clock is past it, so a
    /// backlogged dispatcher never waits. Sleeps for long waits and yields
    /// for short ones rather than spinning: pacing only needs the *rate*
    /// to be right (the virtual clock counts dispatches, not nanoseconds),
    /// and a spinning dispatcher would starve every other thread on
    /// low-core machines. Sleep overshoot self-corrects — the pacing
    /// clock's `+= service_ns` lets a late dispatcher catch up.
    fn pace(deadline: Instant) {
        loop {
            let now = Instant::now();
            if now >= deadline {
                return;
            }
            let remaining = deadline - now;
            if remaining > Duration::from_micros(100) {
                std::thread::sleep(remaining);
            } else {
                std::thread::yield_now();
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use funnelpq::MultiQueueConfig;

    fn tiny_cfg() -> ServerConfig {
        ServerConfig {
            shards: 2,
            tenants: 4,
            clients: 2,
            bands: 64,
            horizon_ns: 1_000_000_000,
            service_ns: 1,
            global_capacity: 1024,
            tenant_quota: 512,
            ..ServerConfig::default()
        }
    }

    #[test]
    fn config_validation_is_typed_not_panicky() {
        let bad = ServerConfig {
            shards: 0,
            ..ServerConfig::default()
        };
        assert!(matches!(
            Scheduler::new(bad),
            Err(ServerError::Config { .. })
        ));
        let bad = ServerConfig {
            affinity: vec![(TenantId(0), 9)],
            ..ServerConfig::default()
        };
        assert!(matches!(
            Scheduler::new(bad),
            Err(ServerError::Config { .. })
        ));
        // A degenerate backend config surfaces as the unified queue error.
        let bad = ServerConfig {
            backend: PqConfig::MultiQueue(MultiQueueConfig {
                factor: 0,
                ..MultiQueueConfig::default()
            }),
            ..ServerConfig::default()
        };
        assert!(matches!(Scheduler::new(bad), Err(ServerError::Queue(_))));
    }

    #[test]
    fn one_shot_jobs_round_trip() {
        let s = Scheduler::new(tiny_cfg()).unwrap();
        let now = s.now_ns();
        for t in 0..4 {
            for k in 0..25 {
                s.submit(
                    0,
                    JobSpec::once(TenantId(t), Deadline::At(now + 1_000_000 + k), k),
                )
                .unwrap();
            }
        }
        s.start();
        while s.in_flight() > 0 {
            std::thread::sleep(Duration::from_millis(1));
        }
        let r = s.stop();
        assert_eq!(r.submitted, 100);
        assert_eq!(r.admitted, 100);
        assert_eq!(r.dispatched, 100);
        assert_eq!(r.completed, 100);
        assert_eq!(r.in_flight_at_stop, 0);
        assert_eq!(r.latency_ns.count(), 100);
    }

    #[test]
    fn periodic_jobs_rearm_and_release_once() {
        let s = Scheduler::new(tiny_cfg()).unwrap();
        let now = s.now_ns();
        // 3 firings each: first deadline + 2 repeats.
        for k in 0..10 {
            s.submit(
                0,
                JobSpec::periodic(TenantId(0), Deadline::At(now + 10_000), k, 1_000, 2),
            )
            .unwrap();
        }
        s.start();
        while s.in_flight() > 0 {
            std::thread::sleep(Duration::from_millis(1));
        }
        let r = s.stop();
        assert_eq!(r.admitted, 10);
        assert_eq!(r.completed, 10, "a periodic job completes exactly once");
        assert_eq!(r.dispatched, 30, "3 firings each");
        assert_eq!(r.rearmed, 20);
    }

    #[test]
    fn submit_after_stop_returns_the_job() {
        let s = Scheduler::new(tiny_cfg()).unwrap();
        s.start();
        let _ = s.stop();
        let err = s
            .submit(0, JobSpec::once(TenantId(1), Deadline::In(1_000), 42))
            .unwrap_err();
        match err {
            ServerError::Stopped { job } => {
                assert_eq!(job.tenant, TenantId(1));
                assert_eq!(job.payload, 42);
            }
            other => panic!("expected Stopped, got {other:?}"),
        }
    }

    #[test]
    fn bands_clamp_to_the_horizon() {
        let s = Scheduler::new(tiny_cfg()).unwrap();
        assert_eq!(s.band_of(0), 0);
        assert_eq!(s.band_of(u64::MAX), 63);
    }
}
