//! The sharded scheduler: N shards, each a priority queue plus one
//! supervised dispatcher thread, behind admission control, overload
//! shedding, and a tenant router.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use funnelpq::obs::{CounterEvent, NoopRecorder, Recorder};
use funnelpq::{PqBuilder, PqConfig};
use funnelpq_util::{Acc, CachePadded};

use crate::admission::Admission;
use crate::error::{AdmitError, ServerError};
use crate::fault::{ArmedFaults, FaultPlan};
use crate::job::{Deadline, Job, JobId, JobSpec, TenantId};
use crate::router::Router;
use crate::shard::{DispatchRecord, Shard, ShardReport};
use crate::supervise::{panic_message, StopOutcome, StopReport, SuperviseConfig};
use crate::telemetry::{ShardTelemetry, TelemetrySnapshot, RANK_SAMPLE_PERIOD};

/// How many dispatches a dispatcher folds into one published dispatch-rate
/// estimate (the denominator of the shed check's drain-time projection).
const RATE_WINDOW: u64 = 32;

/// Deadline-aware load shedding knobs (see `docs/SERVER.md`).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct OverloadConfig {
    /// When on, `submit` fast-fails jobs whose deadline is already
    /// unmeetable: the target shard's queue depth times its measured
    /// per-dispatch time exceeds the job's slack. The refusal is
    /// [`AdmitError::Retry`] with the server's drain-time estimate as a
    /// backpressure hint. Off by default.
    pub shed: bool,
    /// Extra slack (nanoseconds) a job must be short of before it is
    /// shed — headroom against estimate noise, so marginal jobs are
    /// admitted rather than bounced.
    pub margin_ns: u64,
}

/// Everything that shapes a [`Scheduler`], with workable defaults.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Number of shards (one queue + one dispatcher thread each).
    pub shards: usize,
    /// Number of tenants; tenant ids must lie in `0..tenants`.
    pub tenants: usize,
    /// Number of client (submitter) threads; each shard's queue is built
    /// with `clients + 2` thread slots — clients use their own id, the
    /// shard's dispatcher uses id `clients`, and id `clients + 1` is the
    /// recovery slot give-up failover inserts under (serialized by a
    /// scheduler-wide mutex).
    pub clients: usize,
    /// Number of deadline bands (= queue priorities). Deadlines within
    /// `0..horizon_ns` map linearly onto bands; later deadlines clamp to
    /// the last band.
    pub bands: usize,
    /// The deadline horizon the bands cover, in nanoseconds from the
    /// scheduler's epoch.
    pub horizon_ns: u64,
    /// Which queue algorithm (and its typed knobs) backs every shard.
    pub backend: PqConfig,
    /// How many jobs a dispatcher drains per `delete_min_batch` episode.
    pub drain_batch: usize,
    /// Global in-flight capacity across all tenants.
    pub global_capacity: usize,
    /// Per-tenant in-flight quota.
    pub tenant_quota: usize,
    /// Nominal per-job service time in nanoseconds. Dispatchers pace
    /// themselves at one job per `service_ns`, so the shard's virtual
    /// service clock tracks wall time and a deadline's slack is worth
    /// `(deadline - enqueue) / service_ns` dispatch slots. `1` effectively
    /// disables pacing (pure-throughput tests).
    pub service_ns: u64,
    /// Record a [`DispatchRecord`] per dispatch (conservation/ordering
    /// tests). Off by default: it grows a Vec per shard without bound.
    pub record_dispatches: bool,
    /// Width of one telemetry time-series window, in nanoseconds (the
    /// throughput/miss/depth series in [`TelemetrySnapshot`]).
    pub telemetry_window_ns: u64,
    /// Tenants to pin to explicit shards, overriding the hash placement.
    pub affinity: Vec<(TenantId, usize)>,
    /// Deadline-aware load shedding (off by default).
    pub overload: OverloadConfig,
    /// Dispatcher restart policy after panics.
    pub supervise: SuperviseConfig,
    /// Seeded fault plan for chaos testing (`None` in production: the
    /// dispatch and submit paths then pay one presence test each).
    pub fault_plan: Option<FaultPlan>,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            shards: 4,
            tenants: 16,
            clients: 4,
            bands: 256,
            horizon_ns: 5_000_000_000,
            backend: PqConfig::SingleLock,
            drain_batch: 16,
            global_capacity: 4096,
            tenant_quota: 256,
            service_ns: 10_000,
            record_dispatches: false,
            telemetry_window_ns: 100_000_000,
            affinity: Vec::new(),
            overload: OverloadConfig::default(),
            supervise: SuperviseConfig::default(),
            fault_plan: None,
        }
    }
}

impl ServerConfig {
    fn validate(&self) -> Result<(), ServerError> {
        let reason = if self.shards == 0 {
            "shards must be >= 1"
        } else if self.tenants == 0 {
            "tenants must be >= 1"
        } else if self.clients == 0 {
            "clients must be >= 1"
        } else if self.bands == 0 {
            "bands must be >= 1"
        } else if self.horizon_ns == 0 {
            "horizon_ns must be >= 1"
        } else if self.drain_batch == 0 {
            "drain_batch must be >= 1"
        } else if self.global_capacity == 0 {
            "global_capacity must be >= 1"
        } else if self.tenant_quota == 0 {
            "tenant_quota must be >= 1"
        } else if self.service_ns == 0 {
            "service_ns must be >= 1"
        } else if self.telemetry_window_ns == 0 {
            "telemetry_window_ns must be >= 1"
        } else if self
            .affinity
            .iter()
            .any(|(t, s)| *s >= self.shards || t.0 as usize >= self.tenants)
        {
            "affinity pin out of range"
        } else if self.supervise.backoff_max_ns < self.supervise.backoff_base_ns {
            "supervise backoff_max_ns must be >= backoff_base_ns"
        } else if self
            .fault_plan
            .as_ref()
            .and_then(|p| p.max_shard())
            .is_some_and(|s| s >= self.shards)
        {
            "fault plan targets a shard out of range"
        } else {
            return Ok(());
        };
        Err(ServerError::Config { reason })
    }
}

/// What a stopped scheduler hands back: merged shard accounting plus the
/// admission tallies.
#[derive(Debug, Clone, Default)]
pub struct ServerReport {
    /// Per-shard reports, indexed by shard.
    pub shards: Vec<ShardReport>,
    /// Per-shard stop outcomes — [`Scheduler::stop`] reports dispatcher
    /// panics here instead of re-raising them.
    pub stops: Vec<StopReport>,
    /// Jobs submitted (including rejected ones).
    pub submitted: u64,
    /// Jobs admitted past quota + capacity.
    pub admitted: u64,
    /// Jobs refused for per-tenant quota.
    pub rejected_quota: u64,
    /// Jobs refused for global capacity.
    pub rejected_capacity: u64,
    /// Total dispatches across shards (each periodic firing counts).
    pub dispatched: u64,
    /// Jobs fully completed (periodic jobs count once, on their last
    /// firing). Equals `admitted` once the system is quiesced.
    pub completed: u64,
    /// Dispatches that missed their deadline on the virtual service clock.
    pub misses: u64,
    /// Periodic re-arms performed via the fused `replace_min`.
    pub rearmed: u64,
    /// Dispatcher panics across shards (injected or genuine).
    pub panics: u64,
    /// Supervisor restarts across shards.
    pub restarts: u64,
    /// Jobs requeued after panics across shards.
    pub requeued: u64,
    /// Jobs lost across shards (give-up with no healthy shard left; their
    /// admission slots were released). The conservation contract becomes
    /// `admitted == completed + lost` at quiesce.
    pub lost: u64,
    /// Jobs shed at admission by overload control.
    pub shed: u64,
    /// Merged wall-clock enqueue→dispatch latency (nanoseconds).
    pub latency_ns: Acc,
    /// Merged dispatch-slot delay histogram.
    pub delay_slots: Acc,
    /// Wall-clock nanoseconds between `start()` and `stop()`.
    pub run_ns: u64,
    /// Jobs still admitted-but-undispatched at stop (0 when callers
    /// quiesce clients before stopping, as the conservation contract asks).
    pub in_flight_at_stop: u64,
}

impl ServerReport {
    /// Deadline-miss rate over all dispatches, in `[0, 1]`.
    pub fn miss_rate(&self) -> f64 {
        if self.dispatched == 0 {
            0.0
        } else {
            self.misses as f64 / self.dispatched as f64
        }
    }
}

/// A sharded job scheduler over `funnelpq` priority queues.
///
/// Construction is fully typed: the backend arrives as a [`PqConfig`] and
/// every refusal — bad config, unbuildable queue, quota, capacity, shed —
/// is a [`ServerError`], never a panic. Each shard's dispatcher runs under
/// a supervisor that restarts it after panics (see [`SuperviseConfig`] and
/// `docs/SERVER.md`); [`Scheduler::stop`] reports per-shard outcomes
/// instead of re-raising.
///
/// Lifecycle: [`Scheduler::new`] → [`Scheduler::submit`] (any thread,
/// before or after) → [`Scheduler::start`] → quiesce clients →
/// [`Scheduler::stop`] → [`ServerReport`]. Submitting after `stop` has
/// begun returns [`ServerError::Stopped`] with the job.
pub struct Scheduler<R: Recorder = NoopRecorder> {
    cfg: ServerConfig,
    shards: Vec<Arc<Shard>>,
    router: Router,
    admission: Arc<Admission>,
    epoch: Instant,
    next_id: CachePadded<AtomicU64>,
    stopping: Arc<AtomicBool>,
    handles: Mutex<Vec<JoinHandle<ShardReport>>>,
    started_at: Mutex<Option<Instant>>,
    /// Serializes every give-up failover insert: the recovery thread slot
    /// (`clients + 1`) on each queue is shared by all supervisors, so only
    /// one may use it at a time.
    recovery: Arc<Mutex<()>>,
    fault: Option<Arc<ArmedFaults>>,
    recorder: Arc<R>,
}

impl Scheduler<NoopRecorder> {
    /// Builds a scheduler with the default (zero-cost) recorder.
    pub fn new(cfg: ServerConfig) -> Result<Self, ServerError> {
        Scheduler::with_recorder(cfg, Arc::new(NoopRecorder))
    }
}

impl<R: Recorder> Scheduler<R> {
    /// Builds a scheduler whose shard queues and server-level counters
    /// (deadline misses, restarts, requeues, sheds) feed `recorder`.
    pub fn with_recorder(cfg: ServerConfig, recorder: Arc<R>) -> Result<Self, ServerError> {
        cfg.validate()?;
        let mut shards = Vec::with_capacity(cfg.shards);
        for _ in 0..cfg.shards {
            // One thread slot per client, one for the dispatcher, one for
            // give-up recovery inserts from other shards' supervisors.
            let queue = PqBuilder::from_config(cfg.backend.clone(), cfg.bands, cfg.clients + 2)
                .recorder(Arc::clone(&recorder))
                .try_build::<Job>()?;
            shards.push(Arc::new(Shard {
                queue: Arc::from(queue),
                dispatched: CachePadded::new(AtomicU64::new(0)),
                enqueued: CachePadded::new(AtomicU64::new(0)),
                telemetry: Mutex::new(ShardTelemetry::new(cfg.tenants, cfg.telemetry_window_ns)),
                healthy: AtomicBool::new(true),
                shed: CachePadded::new(AtomicU64::new(0)),
                rate_ns: CachePadded::new(AtomicU64::new(0)),
            }));
        }
        let mut router = Router::new(cfg.shards, cfg.tenants);
        for (tenant, shard) in &cfg.affinity {
            router.pin(*tenant, *shard)?;
        }
        let admission = Arc::new(Admission::new(
            cfg.tenants,
            cfg.tenant_quota,
            cfg.global_capacity,
        ));
        let fault = cfg
            .fault_plan
            .as_ref()
            .map(|p| Arc::new(ArmedFaults::new(p)));
        Ok(Scheduler {
            cfg,
            shards,
            router,
            admission,
            epoch: Instant::now(),
            next_id: CachePadded::new(AtomicU64::new(0)),
            stopping: Arc::new(AtomicBool::new(false)),
            handles: Mutex::new(Vec::new()),
            started_at: Mutex::new(None),
            recovery: Arc::new(Mutex::new(())),
            fault,
            recorder,
        })
    }

    /// Nanoseconds since this scheduler's epoch — the clock deadlines are
    /// expressed against.
    pub fn now_ns(&self) -> u64 {
        self.epoch.elapsed().as_nanos() as u64
    }

    /// The shard that serves `tenant` (hash placement unless pinned).
    pub fn route(&self, tenant: TenantId) -> usize {
        self.router.route(tenant)
    }

    /// The configuration this scheduler was built from.
    pub fn config(&self) -> &ServerConfig {
        &self.cfg
    }

    /// Jobs currently admitted but not yet finally dispatched.
    pub fn in_flight(&self) -> usize {
        self.admission.in_flight()
    }

    /// Whether shard `shard`'s dispatcher is still serving (a shard goes
    /// dark only by exhausting its restart budget).
    pub fn shard_healthy(&self, shard: usize) -> bool {
        self.shards
            .get(shard)
            .is_some_and(|s| s.healthy.load(Ordering::Acquire))
    }

    fn band_of(&self, deadline_ns: u64) -> usize {
        let b = (deadline_ns as u128 * self.cfg.bands as u128) / self.cfg.horizon_ns as u128;
        (b as usize).min(self.cfg.bands - 1)
    }

    /// Submits `spec` on behalf of client thread `client`
    /// (`0..config().clients`). Routes to the tenant's shard (failing over
    /// past dark shards), optionally sheds unmeetable deadlines, admits
    /// against quota and capacity, and files the job under its deadline
    /// band. Every refusal carries the stamped job back.
    pub fn submit(&self, client: usize, spec: JobSpec) -> Result<JobId, ServerError> {
        let res = self.submit_inner(client, spec);
        if let Some(faults) = &self.fault {
            // The burst trigger compares against this submit's id whether
            // it was admitted or refused — refusals consumed an id too.
            let id = match &res {
                Ok(id) => Some(*id),
                Err(e) => e.clone().into_job().map(|j| j.id),
            };
            if let Some(burst) = id.and_then(|id| faults.at_submit(id)) {
                for _ in 0..burst.jobs {
                    let tenant = faults.draw_tenant(self.cfg.tenants);
                    let spec = JobSpec::once(tenant, Deadline::In(burst.deadline_in_ns), 0);
                    // Burst refusals (quota, capacity, shed) are counted by
                    // the normal admission/shed tallies.
                    let _ = self.submit_inner(client, spec);
                }
            }
        }
        res
    }

    fn submit_inner(&self, client: usize, spec: JobSpec) -> Result<JobId, ServerError> {
        if client >= self.cfg.clients {
            return Err(ServerError::Config {
                reason: "client id out of range",
            });
        }
        // Route, then fail over past dark shards: a tenant whose home
        // shard gave up is served by the next healthy shard clockwise.
        let routed = self.router.route(spec.tenant);
        let id = self.next_id.fetch_add(1, Ordering::Relaxed);
        let enqueued_ns = self.now_ns();
        // A relative deadline resolves against the enqueue stamp itself,
        // so the promised slack cannot be eroded by anything that happened
        // before the submit landed.
        let deadline_ns = match spec.deadline {
            Deadline::At(t) => t,
            Deadline::In(d) => enqueued_ns.saturating_add(d),
        };
        let stamp = |slot: u64| Job {
            id,
            tenant: spec.tenant,
            deadline_ns,
            payload: spec.payload,
            period_ns: spec.period_ns,
            repeats_left: spec.repeats,
            enqueued_ns,
            enqueued_slot: slot,
        };
        let shard = match self.healthy_from(routed) {
            Some(si) => &self.shards[si],
            None => {
                return Err(ServerError::NoHealthyShard { job: stamp(0) });
            }
        };
        let job = stamp(shard.dispatched.load(Ordering::Acquire));
        if self.stopping.load(Ordering::Acquire) {
            return Err(ServerError::Stopped { job });
        }
        if self.cfg.overload.shed {
            if let Some(after_ns) = self.shed_check(shard, &job) {
                shard.shed.fetch_add(1, Ordering::Relaxed);
                if R::ENABLED {
                    self.recorder.record_event(CounterEvent::JobShed);
                }
                return Err(AdmitError::Retry { after_ns, job }.into());
            }
        }
        self.admission.try_admit(job)?;
        let band = self.band_of(job.deadline_ns);
        // Depth goes up *before* the insert (and back down on failure) so
        // the dispatcher's decrement for this job can never observe the
        // counter below the true population.
        shard.enqueued.fetch_add(1, Ordering::Relaxed);
        if let Err(e) = shard.queue.try_insert(client, band, job) {
            shard.enqueued.fetch_sub(1, Ordering::Relaxed);
            self.admission.release(job.tenant.0 as usize);
            return Err(e.into());
        }
        Ok(id)
    }

    /// The first healthy shard at or clockwise after `start`, if any.
    fn healthy_from(&self, start: usize) -> Option<usize> {
        let n = self.shards.len();
        (0..n)
            .map(|k| (start + k) % n)
            .find(|&si| self.shards[si].healthy.load(Ordering::Acquire))
    }

    /// Projects the shard's drain time against the job's slack; returns
    /// the retry hint when the deadline is unmeetable. The projection is
    /// `depth × per-dispatch time`: every queued job is ahead of this one
    /// in the worst case (same band or earlier), and the per-dispatch time
    /// is the dispatcher's own windowed measurement, never better than the
    /// configured pacing floor.
    fn shed_check(&self, shard: &Shard, job: &Job) -> Option<u64> {
        let depth = shard.enqueued.load(Ordering::Relaxed);
        let published = shard.rate_ns.load(Ordering::Relaxed);
        let rate_ns = if published == 0 {
            self.cfg.service_ns
        } else {
            published.max(self.cfg.service_ns)
        };
        let est_wait = depth.saturating_mul(rate_ns);
        let slack = job.deadline_ns.saturating_sub(job.enqueued_ns);
        if est_wait > slack.saturating_add(self.cfg.overload.margin_ns) {
            Some(est_wait - slack)
        } else {
            None
        }
    }

    /// Takes a live telemetry snapshot: per-shard and per-tenant
    /// histograms, the windowed time-series, queue depths, shed/restart
    /// counts, and the sampled rank-error estimate. Safe to call at any
    /// point in the lifecycle, including while dispatchers run (each
    /// shard's cell is read under a briefly-held lock; cross-shard totals
    /// may be a few dispatches apart).
    pub fn telemetry(&self) -> TelemetrySnapshot {
        let at_ns = self.now_ns();
        let per_shard = self
            .shards
            .iter()
            .map(|s| {
                (
                    s.telemetry_cell().clone(),
                    s.enqueued.load(Ordering::Relaxed),
                    s.shed.load(Ordering::Relaxed),
                    s.queue.adaptive_stats(),
                )
            })
            .collect();
        TelemetrySnapshot::assemble(
            at_ns,
            self.cfg.backend.algorithm().name(),
            self.cfg.telemetry_window_ns,
            per_shard,
        )
    }

    /// Spawns one supervised dispatcher thread per shard. Idempotent:
    /// calling again while running is a no-op.
    pub fn start(&self) {
        let mut handles = self.handles.lock().unwrap();
        if !handles.is_empty() {
            return;
        }
        *self.started_at.lock().unwrap() = Some(Instant::now());
        for (i, shard) in self.shards.iter().enumerate() {
            let ctx = DispatcherCtx {
                epoch: self.epoch,
                shard: Arc::clone(shard),
                shards: self.shards.clone(),
                router: self.router.clone(),
                stopping: Arc::clone(&self.stopping),
                admission: Arc::clone(&self.admission),
                recovery: Arc::clone(&self.recovery),
                fault: self.fault.clone(),
                supervise: self.cfg.supervise,
                recorder: Arc::clone(&self.recorder),
                index: i,
                tid: self.cfg.clients,
                recovery_tid: self.cfg.clients + 1,
                drain: self.cfg.drain_batch,
                service_ns: self.cfg.service_ns,
                bands: self.cfg.bands,
                horizon_ns: self.cfg.horizon_ns,
                record_dispatches: self.cfg.record_dispatches,
            };
            handles.push(
                std::thread::Builder::new()
                    .name(format!("funnelpq-shard-{i}"))
                    .spawn(move || ctx.run())
                    .expect("spawn dispatcher thread"),
            );
        }
    }

    /// Stops the dispatchers and merges their reports. Never panics:
    /// dispatcher panics were already absorbed by each shard's supervisor,
    /// and each shard's ending is reported as a typed
    /// [`StopReport`] in [`ServerReport::stops`]. Callers should quiesce
    /// client threads first (the conservation contract
    /// `admitted == completed + lost` holds only once no submits race the
    /// stop); anything still queued is counted in
    /// [`ServerReport::in_flight_at_stop`].
    pub fn stop(&self) -> ServerReport {
        self.stopping.store(true, Ordering::Release);
        let handles = std::mem::take(&mut *self.handles.lock().unwrap());
        let run_ns = self
            .started_at
            .lock()
            .unwrap()
            .take()
            .map_or(0, |t| t.elapsed().as_nanos() as u64);
        let mut report = ServerReport {
            submitted: self.next_id.load(Ordering::Relaxed),
            admitted: self.admission.admitted(),
            rejected_quota: self.admission.rejected_quota(),
            rejected_capacity: self.admission.rejected_capacity(),
            run_ns,
            ..ServerReport::default()
        };
        for (i, h) in handles.into_iter().enumerate() {
            match h.join() {
                Ok(s) => {
                    report.dispatched += s.dispatched;
                    report.completed += s.completed;
                    report.misses += s.misses;
                    report.rearmed += s.rearmed;
                    report.panics += s.panics;
                    report.restarts += u64::from(s.restarts);
                    report.requeued += s.requeued;
                    report.lost += s.lost;
                    report.latency_ns.merge(&s.latency_ns);
                    report.delay_slots.merge(&s.delay_slots);
                    let outcome = if s.gave_up {
                        StopOutcome::GaveUp {
                            restarts: s.restarts,
                            requeued: s.requeued,
                            lost: s.lost,
                            last_panic: s.last_panic.clone().unwrap_or_default(),
                        }
                    } else if s.panics > 0 {
                        StopOutcome::Recovered {
                            restarts: s.restarts,
                            requeued: s.requeued,
                            last_panic: s.last_panic.clone().unwrap_or_default(),
                        }
                    } else {
                        StopOutcome::Clean
                    };
                    report.stops.push(StopReport {
                        shard: s.shard,
                        outcome,
                    });
                    report.shards.push(s);
                }
                // The supervisor itself died (its catch_unwind ring never
                // lets a dispatcher panic out, so this is a supervisor
                // bug): report it, do not re-raise.
                Err(payload) => report.stops.push(StopReport {
                    shard: i,
                    outcome: StopOutcome::SupervisorLost {
                        message: panic_message(payload.as_ref()),
                    },
                }),
            }
        }
        report.shed = self
            .shards
            .iter()
            .map(|s| s.shed.load(Ordering::Relaxed))
            .sum();
        report.in_flight_at_stop = self.admission.in_flight() as u64;
        report
    }
}

/// Dispatch-loop state kept *outside* the supervisor's `catch_unwind` so a
/// panic cannot take drained-but-undispatched jobs down with the stack:
/// `out[cursor..]` are exactly the survivors the supervisor must requeue.
struct EpisodeState {
    out: Vec<(usize, Job)>,
    cursor: usize,
    episode: u64,
}

/// Everything one dispatcher thread owns or shares.
struct DispatcherCtx<R: Recorder> {
    /// The scheduler's epoch: the clock [`Job::enqueued_ns`] and deadlines
    /// are stamped against.
    epoch: Instant,
    shard: Arc<Shard>,
    /// All shards, for give-up failover.
    shards: Vec<Arc<Shard>>,
    router: Router,
    stopping: Arc<AtomicBool>,
    admission: Arc<Admission>,
    recovery: Arc<Mutex<()>>,
    fault: Option<Arc<ArmedFaults>>,
    supervise: SuperviseConfig,
    recorder: Arc<R>,
    index: usize,
    tid: usize,
    recovery_tid: usize,
    drain: usize,
    service_ns: u64,
    bands: usize,
    horizon_ns: u64,
    record_dispatches: bool,
}

impl<R: Recorder> DispatcherCtx<R> {
    fn band_of(&self, deadline_ns: u64) -> usize {
        let b = (deadline_ns as u128 * self.bands as u128) / self.horizon_ns as u128;
        (b as usize).min(self.bands - 1)
    }

    /// The supervisor: runs the dispatch loop under `catch_unwind`,
    /// requeues panic survivors, restarts with bounded exponential backoff
    /// up to the budget, then fails the shard over to healthy peers.
    fn run(self) -> ShardReport {
        let mut report = ShardReport::new(self.index);
        let mut state = EpisodeState {
            out: Vec::with_capacity(self.drain.max(1) * 2),
            cursor: 0,
            episode: 0,
        };
        loop {
            let caught = catch_unwind(AssertUnwindSafe(|| {
                self.run_episodes(&mut report, &mut state)
            }));
            let payload = match caught {
                Ok(()) => return report,
                Err(p) => p,
            };
            report.panics += 1;
            report.last_panic = Some(panic_message(payload.as_ref()));
            drop(payload);
            // Jobs the dead incarnation had drained but not yet dispatched.
            let survivors = state.out.split_off(state.cursor.min(state.out.len()));
            state.out.clear();
            state.cursor = 0;
            if report.restarts < self.supervise.max_restarts {
                report.restarts += 1;
                self.restart(&mut report, survivors);
            } else {
                self.give_up(&mut report, survivors);
                return report;
            }
        }
    }

    /// Restart path: survivors go back into this shard's own queue (its
    /// dispatcher slot is free — the dispatcher is us), then the loop
    /// re-enters after backoff.
    fn restart(&self, report: &mut ShardReport, survivors: Vec<(usize, Job)>) {
        let mut requeued = 0u64;
        for (band, job) in survivors {
            self.shard.enqueued.fetch_add(1, Ordering::Relaxed);
            if self.shard.queue.try_insert(self.tid, band, job).is_ok() {
                requeued += 1;
            } else {
                self.shard.enqueued.fetch_sub(1, Ordering::Relaxed);
                self.admission.release(job.tenant.0 as usize);
                report.lost += 1;
            }
        }
        report.requeued += requeued;
        if R::ENABLED {
            self.recorder.record_event(CounterEvent::ShardRestart);
            if requeued > 0 {
                self.recorder
                    .record_event_n(CounterEvent::JobsRequeued, requeued);
            }
        }
        {
            let mut t = self.shard.telemetry_cell();
            t.restarts += 1;
            t.requeued += requeued;
        }
        std::thread::sleep(Duration::from_nanos(
            self.supervise.backoff_ns(report.restarts),
        ));
    }

    /// Give-up path: the restart budget is spent. Mark the shard dark so
    /// submitters route around it, drain everything still queued, and hand
    /// each job to the first healthy shard clockwise from its home
    /// placement — through the shared recovery thread slot, serialized by
    /// the recovery mutex. Jobs with nowhere to go are released and
    /// reported lost.
    fn give_up(&self, report: &mut ShardReport, survivors: Vec<(usize, Job)>) {
        report.gave_up = true;
        self.shard.healthy.store(false, Ordering::Release);
        let mut pending = survivors;
        let mut drained: Vec<(usize, Job)> = Vec::with_capacity(self.drain.max(1));
        loop {
            drained.clear();
            let got = self
                .shard
                .queue
                .delete_min_batch(self.tid, self.drain.max(1), &mut drained);
            if got == 0 {
                break;
            }
            self.shard.enqueued.fetch_sub(got as u64, Ordering::Relaxed);
            pending.append(&mut drained);
        }
        let mut requeued = 0u64;
        let _recovery = match self.recovery.lock() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        };
        for (band, job) in pending {
            let start = self.router.route(job.tenant);
            let n = self.shards.len();
            let target = (0..n)
                .map(|k| (start + k) % n)
                .find(|&si| si != self.index && self.shards[si].healthy.load(Ordering::Acquire));
            let placed = target.is_some_and(|si| {
                let peer = &self.shards[si];
                peer.enqueued.fetch_add(1, Ordering::Relaxed);
                if peer.queue.try_insert(self.recovery_tid, band, job).is_ok() {
                    true
                } else {
                    peer.enqueued.fetch_sub(1, Ordering::Relaxed);
                    false
                }
            });
            if placed {
                requeued += 1;
            } else {
                self.admission.release(job.tenant.0 as usize);
                report.lost += 1;
            }
        }
        report.requeued += requeued;
        if R::ENABLED && requeued > 0 {
            self.recorder
                .record_event_n(CounterEvent::JobsRequeued, requeued);
        }
        self.shard.telemetry_cell().requeued += requeued;
    }

    /// The dispatcher loop proper: drain a batch, account each job, re-arm
    /// periodic ones via the fused `replace_min`, pace at `service_ns` per
    /// job. Returns once the stop flag is up *and* a drain came back
    /// empty. Runs inside the supervisor's `catch_unwind`; all loop state
    /// that must survive a panic lives in `state`.
    fn run_episodes(&self, report: &mut ShardReport, state: &mut EpisodeState) {
        // Rank-error sampling only makes sense when a drain batch is an
        // en-bloc snapshot of the queue (see `telemetry` module docs).
        let track_rank = self.shard.queue.ordered_batch_drain();
        // The pacing clock: each dispatch pushes it service_ns further out,
        // and we spin up to it, so sustained throughput is one job per
        // service_ns and the virtual clock tracks wall time.
        let mut next_ready = Instant::now();
        // Dispatch-rate window for the shed check's drain-time projection.
        let mut rate_start = Instant::now();
        let mut rate_count: u64 = 0;
        loop {
            state.out.clear();
            state.cursor = 0;
            let got = self
                .shard
                .queue
                .delete_min_batch(self.tid, self.drain, &mut state.out);
            if got == 0 {
                if self.stopping.load(Ordering::Acquire) {
                    return;
                }
                next_ready = Instant::now();
                // An idle gap would inflate the measured per-dispatch
                // time; drop the estimate rather than publish stale data.
                rate_start = Instant::now();
                rate_count = 0;
                self.shard.rate_ns.store(0, Ordering::Relaxed);
                std::thread::sleep(Duration::from_micros(20));
                continue;
            }
            self.shard.enqueued.fetch_sub(got as u64, Ordering::Relaxed);
            state.episode += 1;
            if track_rank && state.episode.is_multiple_of(RANK_SAMPLE_PERIOD) && got >= 2 {
                // Score the batch before the index-walk below: replace_min
                // re-arms append to `out`, and those entries are not part
                // of the drained snapshot.
                self.shard
                    .telemetry_cell()
                    .record_rank_sample(&state.out[..got]);
            }
            // replace_min below may append the entry it popped; index-walk
            // so those are dispatched in the same episode. The cursor only
            // advances once a job is fully dispatched, so on a panic
            // `out[cursor..]` — including the job in hand — survives.
            while state.cursor < state.out.len() {
                let (_band, job) = state.out[state.cursor];
                if let Some(faults) = &self.fault {
                    // Fires before any accounting: an injected panic loses
                    // nothing, an injected stall freezes the whole loop.
                    if let Some(stall_ns) = faults
                        .at_dispatch(self.index, self.shard.dispatched.load(Ordering::Acquire))
                    {
                        std::thread::sleep(Duration::from_nanos(stall_ns));
                    }
                }
                self.dispatch(job, report, &mut state.out);
                state.cursor += 1;
                rate_count += 1;
                if rate_count == RATE_WINDOW {
                    let per = (rate_start.elapsed().as_nanos() as u64 / RATE_WINDOW)
                        .clamp(self.service_ns, self.service_ns.saturating_mul(1024));
                    self.shard.rate_ns.store(per, Ordering::Relaxed);
                    rate_start = Instant::now();
                    rate_count = 0;
                }
                next_ready += Duration::from_nanos(self.service_ns);
                Self::pace(next_ready);
            }
        }
    }

    fn dispatch(&self, job: Job, report: &mut ShardReport, out: &mut Vec<(usize, Job)>) {
        let pre = self.shard.dispatched.fetch_add(1, Ordering::AcqRel);
        report.dispatched += 1;
        let now = self.epoch.elapsed().as_nanos() as u64;
        let latency = now.saturating_sub(job.enqueued_ns);
        report.latency_ns.record(latency);
        let delay = pre.saturating_sub(job.enqueued_slot);
        report.delay_slots.record(delay);
        let slack = job.deadline_ns.saturating_sub(job.enqueued_ns) / self.service_ns;
        // A miss must be late on BOTH clocks. Virtual-only lateness can be
        // manufactured by a client stalling between stamping the job and
        // finishing the insert (dispatches pass, slack doesn't move);
        // wall-only lateness by the dispatcher itself being preempted (the
        // virtual clock freezes with it). The conjunction leaves exactly
        // the backend-caused lateness: queueing and ordering error.
        let missed = delay > slack && now > job.deadline_ns;
        if missed {
            report.misses += 1;
            if R::ENABLED {
                self.recorder.record_event(CounterEvent::DeadlineMiss);
            }
        }
        if self.record_dispatches {
            report.dispatch_log.push(DispatchRecord {
                job: job.id,
                tenant: job.tenant,
                band: self.band_of(job.deadline_ns),
                deadline_ns: job.deadline_ns,
                missed,
            });
        }
        // This thread is the telemetry cell's only writer, so the lock is
        // uncontended except against an occasional snapshot reader.
        {
            let mut t = self.shard.telemetry_cell();
            t.record_dispatch(&job, now, latency, missed);
            t.windows
                .record_depth(now, self.shard.enqueued.load(Ordering::Relaxed));
        }
        let rearm =
            job.period_ns > 0 && job.repeats_left > 0 && !self.stopping.load(Ordering::Acquire);
        if rearm {
            report.rearmed += 1;
            // Fixed-rate while on time, fixed-delay once late: re-arming
            // from max(deadline, now) keeps every firing's slack at least
            // one full period, so a host stall cannot manufacture a string
            // of impossible deadlines (no thundering catch-up).
            let next = Job {
                deadline_ns: job.deadline_ns.max(now).saturating_add(job.period_ns),
                repeats_left: job.repeats_left - 1,
                enqueued_ns: now,
                enqueued_slot: self.shard.dispatched.load(Ordering::Acquire),
                ..job
            };
            // Fused fast path: the re-insert and the next delete-min share
            // one synchronization episode; whatever it popped joins the
            // in-progress batch.
            let band = self.band_of(next.deadline_ns);
            self.shard.enqueued.fetch_add(1, Ordering::Relaxed);
            if let Some(popped) = self.shard.queue.replace_min(self.tid, band, next) {
                // The popped job left the queue and joins this episode's
                // batch, so the re-arm was depth-neutral.
                self.shard.enqueued.fetch_sub(1, Ordering::Relaxed);
                out.push(popped);
            }
        } else {
            report.completed += 1;
            self.admission.release(job.tenant.0 as usize);
        }
    }

    /// Wait until `deadline`; no-op once the clock is past it, so a
    /// backlogged dispatcher never waits. Sleeps for long waits and yields
    /// for short ones rather than spinning: pacing only needs the *rate*
    /// to be right (the virtual clock counts dispatches, not nanoseconds),
    /// and a spinning dispatcher would starve every other thread on
    /// low-core machines. Sleep overshoot self-corrects — the pacing
    /// clock's `+= service_ns` lets a late dispatcher catch up.
    fn pace(deadline: Instant) {
        loop {
            let now = Instant::now();
            if now >= deadline {
                return;
            }
            let remaining = deadline - now;
            if remaining > Duration::from_micros(100) {
                std::thread::sleep(remaining);
            } else {
                std::thread::yield_now();
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use funnelpq::MultiQueueConfig;

    fn tiny_cfg() -> ServerConfig {
        ServerConfig {
            shards: 2,
            tenants: 4,
            clients: 2,
            bands: 64,
            horizon_ns: 1_000_000_000,
            service_ns: 1,
            global_capacity: 1024,
            tenant_quota: 512,
            ..ServerConfig::default()
        }
    }

    #[test]
    fn config_validation_is_typed_not_panicky() {
        let bad = ServerConfig {
            shards: 0,
            ..ServerConfig::default()
        };
        assert!(matches!(
            Scheduler::new(bad),
            Err(ServerError::Config { .. })
        ));
        let bad = ServerConfig {
            affinity: vec![(TenantId(0), 9)],
            ..ServerConfig::default()
        };
        assert!(matches!(
            Scheduler::new(bad),
            Err(ServerError::Config { .. })
        ));
        // A degenerate backend config surfaces as the unified queue error.
        let bad = ServerConfig {
            backend: PqConfig::MultiQueue(MultiQueueConfig {
                factor: 0,
                ..MultiQueueConfig::default()
            }),
            ..ServerConfig::default()
        };
        assert!(matches!(Scheduler::new(bad), Err(ServerError::Queue(_))));
        // A fault plan aimed at a shard that does not exist.
        let bad = ServerConfig {
            fault_plan: Some(FaultPlan::new(1).dispatcher_panic(4, 0)),
            ..ServerConfig::default()
        };
        assert!(matches!(
            Scheduler::new(bad),
            Err(ServerError::Config { .. })
        ));
        // An inverted supervision backoff range.
        let bad = ServerConfig {
            supervise: SuperviseConfig {
                backoff_base_ns: 1_000,
                backoff_max_ns: 10,
                ..SuperviseConfig::default()
            },
            ..ServerConfig::default()
        };
        assert!(matches!(
            Scheduler::new(bad),
            Err(ServerError::Config { .. })
        ));
    }

    #[test]
    fn one_shot_jobs_round_trip() {
        let s = Scheduler::new(tiny_cfg()).unwrap();
        let now = s.now_ns();
        for t in 0..4 {
            for k in 0..25 {
                s.submit(
                    0,
                    JobSpec::once(TenantId(t), Deadline::At(now + 1_000_000 + k), k),
                )
                .unwrap();
            }
        }
        s.start();
        while s.in_flight() > 0 {
            std::thread::sleep(Duration::from_millis(1));
        }
        let r = s.stop();
        assert_eq!(r.submitted, 100);
        assert_eq!(r.admitted, 100);
        assert_eq!(r.dispatched, 100);
        assert_eq!(r.completed, 100);
        assert_eq!(r.in_flight_at_stop, 0);
        assert_eq!(r.latency_ns.count(), 100);
        assert_eq!(r.panics, 0);
        assert_eq!(r.lost, 0);
        assert!(r.stops.iter().all(|s| s.outcome.is_clean()));
    }

    #[test]
    fn periodic_jobs_rearm_and_release_once() {
        let s = Scheduler::new(tiny_cfg()).unwrap();
        let now = s.now_ns();
        // 3 firings each: first deadline + 2 repeats.
        for k in 0..10 {
            s.submit(
                0,
                JobSpec::periodic(TenantId(0), Deadline::At(now + 10_000), k, 1_000, 2),
            )
            .unwrap();
        }
        s.start();
        while s.in_flight() > 0 {
            std::thread::sleep(Duration::from_millis(1));
        }
        let r = s.stop();
        assert_eq!(r.admitted, 10);
        assert_eq!(r.completed, 10, "a periodic job completes exactly once");
        assert_eq!(r.dispatched, 30, "3 firings each");
        assert_eq!(r.rearmed, 20);
    }

    #[test]
    fn submit_after_stop_returns_the_job() {
        let s = Scheduler::new(tiny_cfg()).unwrap();
        s.start();
        let _ = s.stop();
        let err = s
            .submit(0, JobSpec::once(TenantId(1), Deadline::In(1_000), 42))
            .unwrap_err();
        match err {
            ServerError::Stopped { job } => {
                assert_eq!(job.tenant, TenantId(1));
                assert_eq!(job.payload, 42);
            }
            other => panic!("expected Stopped, got {other:?}"),
        }
    }

    #[test]
    fn bands_clamp_to_the_horizon() {
        let s = Scheduler::new(tiny_cfg()).unwrap();
        assert_eq!(s.band_of(0), 0);
        assert_eq!(s.band_of(u64::MAX), 63);
    }

    #[test]
    fn stop_survives_an_injected_dispatcher_panic() {
        // Regression for the old `h.join().expect(...)` in stop(): a
        // dispatcher panic must surface as a typed StopOutcome, with the
        // panicked shard's jobs recovered, never as a stop()-time panic.
        let s = Scheduler::new(ServerConfig {
            fault_plan: Some(
                FaultPlan::new(3)
                    .dispatcher_panic(0, 5)
                    .dispatcher_panic(1, 5),
            ),
            // Pin tenants so both shards are guaranteed traffic (and so
            // both faults are guaranteed to fire).
            affinity: vec![
                (TenantId(0), 0),
                (TenantId(1), 1),
                (TenantId(2), 0),
                (TenantId(3), 1),
            ],
            ..tiny_cfg()
        })
        .unwrap();
        let now = s.now_ns();
        for t in 0..4 {
            for k in 0..25 {
                s.submit(
                    0,
                    JobSpec::once(TenantId(t), Deadline::At(now + 100_000_000 + k), k),
                )
                .unwrap();
            }
        }
        s.start();
        while s.in_flight() > 0 {
            std::thread::sleep(Duration::from_millis(1));
        }
        let r = s.stop();
        assert_eq!(r.panics, 2, "both shards' faults fired");
        assert_eq!(r.restarts, 2);
        assert_eq!(r.completed, 100, "every admitted job still completed");
        assert_eq!(r.lost, 0);
        for stop in &r.stops {
            match &stop.outcome {
                StopOutcome::Recovered { last_panic, .. } => {
                    assert!(last_panic.contains("injected"), "got {last_panic:?}");
                }
                other => panic!("expected Recovered, got {other:?}"),
            }
        }
        // Telemetry agrees with the report.
        let t = s.telemetry();
        assert_eq!(t.restarts(), 2);
    }

    #[test]
    fn shed_refuses_unmeetable_deadlines_with_a_hint() {
        // No dispatcher running: a pre-start backlog makes depth (and so
        // the drain-time projection) fully deterministic.
        let s = Scheduler::new(ServerConfig {
            shards: 1,
            service_ns: 1_000,
            overload: OverloadConfig {
                shed: true,
                margin_ns: 0,
            },
            ..tiny_cfg()
        })
        .unwrap();
        for k in 0..100 {
            // Ample slack: admitted despite the growing backlog.
            s.submit(0, JobSpec::once(TenantId(0), Deadline::In(10_000_000), k))
                .unwrap();
        }
        // 100 queued × 1_000 ns each = 100_000 ns of backlog; a 10_000 ns
        // deadline is unmeetable.
        let err = s
            .submit(0, JobSpec::once(TenantId(1), Deadline::In(10_000), 7))
            .unwrap_err();
        match err {
            ServerError::Admit(AdmitError::Retry { after_ns, job }) => {
                assert_eq!(after_ns, 100 * 1_000 - 10_000);
                assert_eq!(job.payload, 7);
            }
            other => panic!("expected Retry, got {other:?}"),
        }
        // Shed jobs consumed no admission slot.
        assert_eq!(s.in_flight(), 100);
        let r = s.stop();
        assert_eq!(r.shed, 1);
        assert_eq!(r.rejected_quota + r.rejected_capacity, 0);
    }
}
