//! One shard: a priority queue of jobs plus its dispatch accounting.

use std::sync::atomic::{AtomicBool, AtomicU64};
use std::sync::{Arc, Mutex, MutexGuard};

use funnelpq::BoundedPq;
use funnelpq_util::{Acc, CachePadded};

use crate::job::{Job, JobId, TenantId};
use crate::telemetry::ShardTelemetry;

/// A shard's queue plus the shared state its dispatcher and submitters
/// both touch.
pub(crate) struct Shard {
    /// The backing priority queue; priorities are deadline bands.
    pub(crate) queue: Arc<dyn BoundedPq<Job>>,
    /// Count of dispatches this shard has performed — the shard's *virtual
    /// service clock*. Submitters stamp its current value into
    /// [`Job::enqueued_slot`]; the dispatcher evaluates deadline misses
    /// against it (see `docs/SERVER.md`).
    pub(crate) dispatched: CachePadded<AtomicU64>,
    /// Live queue depth: incremented by submitters on a successful insert,
    /// decremented by the dispatcher as it drains. Lock-free so submit
    /// never touches the telemetry mutex.
    pub(crate) enqueued: CachePadded<AtomicU64>,
    /// The shard's telemetry cell. Written only by the shard's dispatcher
    /// (so the lock is uncontended on the hot path); read by
    /// [`Scheduler::telemetry`](crate::Scheduler::telemetry).
    pub(crate) telemetry: Mutex<ShardTelemetry>,
    /// Cleared when the shard's dispatcher exhausts its restart budget and
    /// gives up. Submitters route around dark shards; the give-up path
    /// drains the queue into healthy ones.
    pub(crate) healthy: AtomicBool,
    /// Jobs shed at admission for this shard (deadline unmeetable given
    /// backlog × dispatch rate). Written by submitters, so it lives here
    /// as a lock-free counter rather than in the telemetry cell.
    pub(crate) shed: CachePadded<AtomicU64>,
    /// The dispatcher's windowed estimate of nanoseconds per dispatch,
    /// published for the submit-side shed check. `0` means "no estimate
    /// yet" (callers fall back to the configured `service_ns`).
    pub(crate) rate_ns: CachePadded<AtomicU64>,
}

impl Shard {
    /// The telemetry cell, recovering from poisoning: a dispatcher that
    /// panicked while holding the lock leaves behind nothing worse than a
    /// half-filed dispatch (all fields are plain counters/histograms), and
    /// the supervisor must still be able to file restarts afterwards.
    pub(crate) fn telemetry_cell(&self) -> MutexGuard<'_, ShardTelemetry> {
        match self.telemetry.lock() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        }
    }
}

/// One dispatched job, as remembered by a shard running with
/// `record_dispatches` on (integration tests reconstruct conservation and
/// ordering from these).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DispatchRecord {
    /// The dispatched job's id.
    pub job: JobId,
    /// Its tenant.
    pub tenant: TenantId,
    /// The deadline band (queue priority) it was dequeued under.
    pub band: usize,
    /// Its absolute deadline.
    pub deadline_ns: u64,
    /// Whether it missed its deadline on the virtual service clock.
    pub missed: bool,
}

/// What one shard's dispatcher thread hands back when it exits.
#[derive(Debug, Clone, Default)]
pub struct ShardReport {
    /// Which shard this is.
    pub shard: usize,
    /// Total dispatches (periodic re-arms count once per firing).
    pub dispatched: u64,
    /// Jobs fully finished (a periodic job completes only on its last
    /// firing, releasing its admission slot).
    pub completed: u64,
    /// Dispatches that missed their deadline on the virtual service clock.
    pub misses: u64,
    /// Periodic re-arms performed via the fused `replace_min`.
    pub rearmed: u64,
    /// Wall-clock enqueue→dispatch latency histogram (nanoseconds).
    pub latency_ns: Acc,
    /// Dispatch-slot delay histogram: how many dispatches each job waited
    /// beyond its enqueue stamp. Strict backends keep this bounded by the
    /// in-flight population; relaxed backends add rank error on top.
    pub delay_slots: Acc,
    /// Per-dispatch log, populated only when the server runs with
    /// `record_dispatches` (conservation/ordering tests).
    pub dispatch_log: Vec<DispatchRecord>,
    /// Times the dispatcher panicked (injected or genuine).
    pub panics: u64,
    /// Times the supervisor restarted the dispatcher after a panic.
    pub restarts: u32,
    /// Jobs requeued after panics: survivors put back into this shard on a
    /// restart, plus the queue handed to healthy shards on a give-up.
    pub requeued: u64,
    /// Jobs that could not be placed anywhere after a give-up (no healthy
    /// shard left); their admission slots were released.
    pub lost: u64,
    /// Whether the dispatcher exhausted its restart budget and went dark.
    pub gave_up: bool,
    /// The most recent panic's message, if any panic occurred.
    pub last_panic: Option<String>,
}

impl ShardReport {
    pub(crate) fn new(shard: usize) -> Self {
        ShardReport {
            shard,
            ..ShardReport::default()
        }
    }
}
