//! Client-side retry policy for refused submissions.
//!
//! Admission refusals are part of the server's contract — quota, capacity,
//! and (new in the resilience layer) deadline shedding all hand the job
//! back by value with a typed reason. A well-behaved client backs off
//! before retrying; a fleet of them must not resynchronise into a
//! thundering herd. [`RetryPolicy`] packages the house policy used by the
//! `server_load` bench and the `pqstat` example: jittered exponential
//! backoff, seeded per client so runs replay, that honours the server's
//! own [`AdmitError::Retry`] hint when one is given.
//!
//! [`AdmitError::Retry`]: crate::AdmitError::Retry

use std::time::Duration;

use funnelpq_util::XorShift64Star;

use crate::error::{AdmitError, ServerError};

/// Jittered exponential backoff for resubmitting refused jobs.
///
/// `next_delay` classifies the error: transient refusals (quota, capacity,
/// queue-full races) get an exponentially growing delay; a shed job's
/// [`AdmitError::Retry`] carries the server's own estimate of when the
/// backlog will have drained, which overrides the exponential schedule;
/// permanent errors (bad tenant, stopped scheduler, config) return `None`
/// — retrying cannot help. Call [`RetryPolicy::note_ok`] after a
/// successful submit to reset the schedule.
#[derive(Debug, Clone)]
pub struct RetryPolicy {
    base_ns: u64,
    max_ns: u64,
    attempt: u32,
    rng: XorShift64Star,
}

impl RetryPolicy {
    /// Policy starting at `base_ns` and capping at `max_ns`, with jitter
    /// drawn from a stream seeded by `seed` (give each client thread its
    /// own seed).
    pub fn new(base_ns: u64, max_ns: u64, seed: u64) -> Self {
        RetryPolicy {
            base_ns: base_ns.max(1),
            max_ns: max_ns.max(base_ns.max(1)),
            attempt: 0,
            rng: XorShift64Star::new(seed | 1),
        }
    }

    /// Resets the exponential schedule after a successful submit.
    pub fn note_ok(&mut self) {
        self.attempt = 0;
    }

    /// How long to wait before resubmitting after `err`, or `None` when
    /// the error is permanent and a retry cannot succeed.
    pub fn next_delay(&mut self, err: &ServerError) -> Option<Duration> {
        let target_ns = match err {
            ServerError::Admit(AdmitError::Retry { after_ns, .. }) => {
                // The server already estimated the drain time; trust it
                // (still jittered so shed clients do not return in step).
                self.attempt = self.attempt.saturating_add(1);
                (*after_ns).clamp(self.base_ns, self.max_ns)
            }
            ServerError::Admit(AdmitError::TenantQuota { .. })
            | ServerError::Admit(AdmitError::Capacity { .. })
            | ServerError::Queue(_) => {
                let shift = self.attempt.min(20);
                self.attempt = self.attempt.saturating_add(1);
                self.base_ns.saturating_mul(1u64 << shift).min(self.max_ns)
            }
            _ => return None,
        };
        // Jitter in [target/2, target]: half the wait is deterministic,
        // half is spread so a synchronised burst decorrelates.
        let half = (target_ns / 2).max(1);
        let jittered = half + self.rng.below(half + 1);
        Some(Duration::from_nanos(jittered))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::job::{Job, TenantId};

    fn job() -> Job {
        Job {
            id: 0,
            tenant: TenantId(0),
            payload: 0,
            deadline_ns: 1_000,
            period_ns: 0,
            repeats_left: 0,
            enqueued_ns: 0,
            enqueued_slot: 0,
        }
    }

    #[test]
    fn transient_errors_back_off_exponentially_with_jitter() {
        let mut p = RetryPolicy::new(1_000, 1_000_000, 42);
        let err = ServerError::Admit(AdmitError::Capacity {
            capacity: 8,
            job: job(),
        });
        let mut last_max = 0u64;
        for i in 0..6 {
            let d = p
                .next_delay(&err)
                .expect("capacity is transient")
                .as_nanos() as u64;
            let target = 1_000u64 << i;
            assert!(
                d >= target / 2 && d <= target,
                "attempt {i}: delay {d} outside [{}, {target}]",
                target / 2
            );
            assert!(d >= last_max / 4, "schedule must grow");
            last_max = d;
        }
        p.note_ok();
        let d = p.next_delay(&err).unwrap().as_nanos() as u64;
        assert!(d <= 1_000, "note_ok resets to base");
    }

    #[test]
    fn shed_hint_overrides_schedule_and_is_clamped() {
        let mut p = RetryPolicy::new(1_000, 1_000_000, 7);
        let hinted = ServerError::Admit(AdmitError::Retry {
            after_ns: 50_000,
            job: job(),
        });
        let d = p.next_delay(&hinted).unwrap().as_nanos() as u64;
        assert!(
            (25_000..=50_000).contains(&d),
            "half-to-full of the hint, got {d}"
        );

        let huge = ServerError::Admit(AdmitError::Retry {
            after_ns: u64::MAX,
            job: job(),
        });
        let d = p.next_delay(&huge).unwrap().as_nanos() as u64;
        assert!(d <= 1_000_000, "hint clamps to max_ns");
    }

    #[test]
    fn permanent_errors_do_not_retry() {
        let mut p = RetryPolicy::new(1_000, 1_000_000, 9);
        assert!(p
            .next_delay(&ServerError::Admit(AdmitError::TenantOutOfRange {
                tenant: TenantId(99),
                tenants: 4,
                job: job()
            }))
            .is_none());
        assert!(p.next_delay(&ServerError::Stopped { job: job() }).is_none());
        assert!(p.next_delay(&ServerError::Config { reason: "x" }).is_none());
    }

    #[test]
    fn caps_never_overflow() {
        let mut p = RetryPolicy::new(u64::MAX / 2, u64::MAX, 3);
        let err = ServerError::Admit(AdmitError::Capacity {
            capacity: 8,
            job: job(),
        });
        for _ in 0..40 {
            let _ = p.next_delay(&err).unwrap();
        }
    }
}
