//! Live server telemetry: per-tenant and per-shard latency/slack
//! histograms, a windowed throughput/depth time-series, and a sampled
//! online rank-error estimator — all aggregated on demand into a
//! versioned [`TelemetrySnapshot`] (see `docs/OBSERVABILITY.md`).
//!
//! Each shard owns one [`ShardTelemetry`] behind a `Mutex`. Its only
//! writer is that shard's dispatcher thread, which takes the (therefore
//! uncontended) lock briefly per dispatch; [`Scheduler::telemetry`]
//! readers take it rarely, so a snapshot never blocks dispatch for more
//! than one record. Queue depth is tracked separately as a lock-free
//! counter on the shard so submitters never touch the mutex.
//!
//! ## Rank error
//!
//! Relaxed backends (the MultiQueue) may hand back keys out of order.
//! The estimator samples every [`RANK_SAMPLE_PERIOD`]-th drain episode
//! and scores the batch `delete_min_batch` returned: for each element,
//! how many *later* elements of the same batch carry a strictly smaller
//! band — the number of jobs it cut ahead of. Those displacements feed
//! the `rank_error` histogram. Sampling is gated on
//! [`funnelpq::BoundedPq::ordered_batch_drain`]: only backends whose
//! batches are en-bloc drains (one lock hold, or en-bloc relaxed pops)
//! yield batches whose internal inversions are attributable to queue
//! policy rather than to benign interleaving, so a strict backend scores
//! exactly zero and a MultiQueue's score is genuine relaxation.
//!
//! [`Scheduler::telemetry`]: crate::Scheduler::telemetry

use funnelpq::AdaptiveStats;
use funnelpq_util::json::{JsonWriter, SCHEMA_VERSION};
use funnelpq_util::Acc;

use crate::job::Job;

/// How many drain episodes pass between rank-error samples. Scoring is
/// O(batch²) in the drain batch size, so sampling keeps it off the hot
/// path while still accumulating hundreds of samples per second.
pub const RANK_SAMPLE_PERIOD: u64 = 8;

/// How many time-series windows each shard retains (a ring; older
/// windows are overwritten in place).
pub const WINDOW_COUNT: usize = 64;

/// Per-tenant accounting, accumulated by whichever shard dispatches the
/// tenant's jobs and merged across shards at snapshot time.
#[derive(Debug, Clone, Default)]
pub struct TenantStats {
    /// The tenant id.
    pub tenant: u32,
    /// Dispatches on behalf of this tenant (each periodic firing counts).
    pub dispatched: u64,
    /// Dispatches that missed their deadline on the virtual service clock.
    pub misses: u64,
    /// Wall-clock enqueue→dispatch latency histogram (nanoseconds).
    pub latency_ns: Acc,
    /// Deadline slack remaining at dispatch (nanoseconds; `0` = dispatched
    /// at or past the deadline). A healthy tenant's p50 sits well above 0.
    pub slack_ns: Acc,
}

impl TenantStats {
    fn merge(&mut self, other: &TenantStats) {
        self.dispatched += other.dispatched;
        self.misses += other.misses;
        self.latency_ns.merge(&other.latency_ns);
        self.slack_ns.merge(&other.slack_ns);
    }
}

/// Per-shard accounting as captured at snapshot time.
#[derive(Debug, Clone, Default)]
pub struct ShardStats {
    /// Which shard.
    pub shard: usize,
    /// Dispatches this shard has performed.
    pub dispatched: u64,
    /// Deadline misses among them.
    pub misses: u64,
    /// Jobs sitting in the shard's queue right now.
    pub depth: u64,
    /// Wall-clock enqueue→dispatch latency histogram (nanoseconds).
    pub latency_ns: Acc,
    /// Per-element displacement histogram from sampled drain batches
    /// (see the module docs). Empty when the backend's batches are not
    /// en-bloc drains.
    pub rank_error: Acc,
    /// How many drain batches were scored into `rank_error`.
    pub rank_samples: u64,
    /// Supervisor restarts of this shard's dispatcher after panics.
    pub restarts: u64,
    /// Jobs requeued after panics (restart survivors + give-up failover).
    pub requeued: u64,
    /// Jobs shed at admission for this shard (overload control).
    pub shed: u64,
    /// NUMA-adaptive controller snapshot, when the backend is `NumaPq`:
    /// current mode, switch-overs, epochs, delegation traffic. `None`
    /// for every other backend.
    pub adaptive: Option<AdaptiveStats>,
}

/// One time-series window: counts over `window_ns` of wall clock.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct WindowStats {
    /// Window start, in nanoseconds since the scheduler's epoch.
    pub start_ns: u64,
    /// Dispatches that landed in this window.
    pub dispatched: u64,
    /// Deadline misses among them.
    pub misses: u64,
    /// Queue depth as last observed inside the window (summed across
    /// shards in the merged view).
    pub depth: u64,
}

/// Fixed-size ring of time-series windows, indexed by
/// `now_ns / window_ns`. Old windows are reused in place, so the ring
/// always holds the most recent `WINDOW_COUNT` windows that saw traffic.
#[derive(Debug, Clone)]
pub(crate) struct WindowRing {
    window_ns: u64,
    /// `(window_index + 1, stats)`; 0 marks a never-used slot.
    slots: Vec<(u64, WindowStats)>,
}

impl WindowRing {
    pub(crate) fn new(window_ns: u64) -> Self {
        WindowRing {
            window_ns: window_ns.max(1),
            slots: vec![(0, WindowStats::default()); WINDOW_COUNT],
        }
    }

    fn slot(&mut self, now_ns: u64) -> &mut WindowStats {
        let index = now_ns / self.window_ns;
        let slot = &mut self.slots[index as usize % WINDOW_COUNT];
        if slot.0 != index + 1 {
            slot.0 = index + 1;
            slot.1 = WindowStats {
                start_ns: index * self.window_ns,
                ..WindowStats::default()
            };
        }
        &mut slot.1
    }

    pub(crate) fn record_dispatch(&mut self, now_ns: u64, missed: bool) {
        let w = self.slot(now_ns);
        w.dispatched += 1;
        w.misses += u64::from(missed);
    }

    pub(crate) fn record_depth(&mut self, now_ns: u64, depth: u64) {
        self.slot(now_ns).depth = depth;
    }

    /// The live windows, oldest first.
    pub(crate) fn windows(&self) -> Vec<WindowStats> {
        let mut out: Vec<WindowStats> = self
            .slots
            .iter()
            .filter(|(used, _)| *used != 0)
            .map(|&(_, w)| w)
            .collect();
        out.sort_by_key(|w| w.start_ns);
        out
    }
}

/// One shard's telemetry cell. Written only by the shard's dispatcher
/// (uncontended mutex); read by [`Scheduler::telemetry`].
///
/// [`Scheduler::telemetry`]: crate::Scheduler::telemetry
#[derive(Debug, Clone)]
pub(crate) struct ShardTelemetry {
    pub(crate) dispatched: u64,
    pub(crate) misses: u64,
    pub(crate) latency_ns: Acc,
    pub(crate) rank_error: Acc,
    pub(crate) rank_samples: u64,
    /// Written by the shard's supervisor between dispatcher incarnations
    /// (never concurrently with the dispatcher — the supervisor *is* the
    /// dispatcher thread).
    pub(crate) restarts: u64,
    pub(crate) requeued: u64,
    pub(crate) windows: WindowRing,
    /// Indexed by tenant id.
    pub(crate) tenants: Vec<TenantStats>,
}

impl ShardTelemetry {
    pub(crate) fn new(tenants: usize, window_ns: u64) -> Self {
        ShardTelemetry {
            dispatched: 0,
            misses: 0,
            latency_ns: Acc::new(),
            rank_error: Acc::new(),
            rank_samples: 0,
            restarts: 0,
            requeued: 0,
            windows: WindowRing::new(window_ns),
            tenants: (0..tenants)
                .map(|t| TenantStats {
                    tenant: t as u32,
                    ..TenantStats::default()
                })
                .collect(),
        }
    }

    /// Files one dispatch: shard totals, the tenant's histograms, and the
    /// current time-series window.
    pub(crate) fn record_dispatch(
        &mut self,
        job: &Job,
        now_ns: u64,
        latency_ns: u64,
        missed: bool,
    ) {
        self.dispatched += 1;
        self.misses += u64::from(missed);
        self.latency_ns.record(latency_ns);
        self.windows.record_dispatch(now_ns, missed);
        if let Some(t) = self.tenants.get_mut(job.tenant.0 as usize) {
            t.dispatched += 1;
            t.misses += u64::from(missed);
            t.latency_ns.record(latency_ns);
            t.slack_ns.record(job.deadline_ns.saturating_sub(now_ns));
        }
    }

    /// Scores one sampled drain batch: each element's displacement is the
    /// number of later batch elements with a strictly smaller band.
    pub(crate) fn record_rank_sample(&mut self, batch: &[(usize, Job)]) {
        self.rank_samples += 1;
        for (i, &(band, _)) in batch.iter().enumerate() {
            let displaced = batch[i + 1..]
                .iter()
                .filter(|&&(later, _)| later < band)
                .count();
            self.rank_error.record(displaced as u64);
        }
    }
}

/// A consistent-enough point-in-time view of the whole scheduler's
/// telemetry (shards are read one after another, so cross-shard totals
/// can be a few dispatches apart — fine for monitoring).
///
/// Serialize with [`TelemetrySnapshot::to_json`]; the layout is stamped
/// with [`SCHEMA_VERSION`] so readers can refuse drifted emitters.
#[derive(Debug, Clone, Default)]
pub struct TelemetrySnapshot {
    /// JSON layout version ([`SCHEMA_VERSION`]).
    pub schema_version: u32,
    /// When the snapshot was taken, nanoseconds since the scheduler epoch.
    pub at_ns: u64,
    /// The backend algorithm's canonical name.
    pub backend: String,
    /// The time-series window width, nanoseconds.
    pub window_ns: u64,
    /// Per-shard stats, indexed by shard.
    pub shards: Vec<ShardStats>,
    /// Per-tenant stats merged across shards; only tenants that have
    /// dispatched at least one job appear.
    pub tenants: Vec<TenantStats>,
    /// Time-series windows merged across shards, oldest first.
    pub windows: Vec<WindowStats>,
}

impl TelemetrySnapshot {
    /// Total dispatches across shards.
    pub fn dispatched(&self) -> u64 {
        self.shards.iter().map(|s| s.dispatched).sum()
    }

    /// Total deadline misses across shards.
    pub fn misses(&self) -> u64 {
        self.shards.iter().map(|s| s.misses).sum()
    }

    /// Total queued jobs across shards at snapshot time.
    pub fn depth(&self) -> u64 {
        self.shards.iter().map(|s| s.depth).sum()
    }

    /// Total drain batches scored into the rank-error estimate, across
    /// shards (zero for backends whose batches are not en-bloc drains).
    pub fn rank_samples(&self) -> u64 {
        self.shards.iter().map(|s| s.rank_samples).sum()
    }

    /// Total dispatcher restarts across shards.
    pub fn restarts(&self) -> u64 {
        self.shards.iter().map(|s| s.restarts).sum()
    }

    /// Total jobs requeued after panics, across shards.
    pub fn requeued(&self) -> u64 {
        self.shards.iter().map(|s| s.requeued).sum()
    }

    /// Total jobs shed at admission, across shards.
    pub fn shed(&self) -> u64 {
        self.shards.iter().map(|s| s.shed).sum()
    }

    /// The NUMA-adaptive controller's current mode name, when the
    /// backend is `NumaPq` (the first shard's controller speaks for the
    /// fleet: every shard runs the same policy over the same machine).
    pub fn numa_mode(&self) -> Option<&'static str> {
        self.shards
            .iter()
            .find_map(|s| s.adaptive.map(|a| a.mode.name()))
    }

    /// Total NUMA mode switch-overs across shards (zero for backends
    /// without an adaptive controller).
    pub fn mode_switches(&self) -> u64 {
        self.shards
            .iter()
            .filter_map(|s| s.adaptive.map(|a| a.switches))
            .sum()
    }

    /// Mean sampled rank error per dispatched element, across shards
    /// (`0.0` when nothing has been sampled — including for backends
    /// whose batches are not en-bloc drains).
    pub fn rank_error_mean(&self) -> f64 {
        let (sum, count) = self.shards.iter().fold((0u64, 0u64), |(s, c), sh| {
            (s + sh.rank_error.sum(), c + sh.rank_error.count())
        });
        if count == 0 {
            0.0
        } else {
            sum as f64 / count as f64
        }
    }

    fn acc_json(w: &mut JsonWriter, k: &str, acc: &Acc) {
        w.key(k);
        w.begin_obj(false);
        w.field_u64("count", acc.count());
        w.field_f64_fixed("mean", if acc.count() == 0 { 0.0 } else { acc.mean() }, 1);
        w.field_u64("p50", acc.p50());
        w.field_u64("p99", acc.p99());
        w.field_u64("p999", acc.p999());
        w.field_u64("max", acc.max());
        w.end();
    }

    /// Renders the snapshot as a versioned JSON document (no trailing
    /// newline).
    pub fn to_json(&self) -> String {
        let mut w = JsonWriter::spaced();
        w.begin_obj(true);
        w.field_u64("schema_version", u64::from(self.schema_version));
        w.field_u64("at_ns", self.at_ns);
        w.field_str("backend", &self.backend);
        w.field_u64("window_ns", self.window_ns);
        w.key("totals");
        w.begin_obj(false);
        w.field_u64("dispatched", self.dispatched());
        w.field_u64("misses", self.misses());
        w.field_u64("depth", self.depth());
        w.field_u64("rank_samples", self.rank_samples());
        w.field_f64("rank_error_mean", self.rank_error_mean());
        w.field_u64("restarts", self.restarts());
        w.field_u64("requeued", self.requeued());
        w.field_u64("shed", self.shed());
        if let Some(mode) = self.numa_mode() {
            w.field_str("numa_mode", mode);
            w.field_u64("mode_switches", self.mode_switches());
        }
        w.end();
        w.key("shards");
        w.begin_arr(true);
        for s in &self.shards {
            w.begin_obj(false);
            w.field_u64("shard", s.shard as u64);
            w.field_u64("dispatched", s.dispatched);
            w.field_u64("misses", s.misses);
            w.field_u64("depth", s.depth);
            Self::acc_json(&mut w, "latency_ns", &s.latency_ns);
            Self::acc_json(&mut w, "rank_error", &s.rank_error);
            w.field_u64("rank_samples", s.rank_samples);
            w.field_u64("restarts", s.restarts);
            w.field_u64("requeued", s.requeued);
            w.field_u64("shed", s.shed);
            if let Some(a) = s.adaptive {
                w.key("numa");
                w.begin_obj(false);
                w.field_str("mode", a.mode.name());
                w.field_u64("switches", a.switches);
                w.field_u64("epochs", a.epochs);
                w.field_u64("delegated", a.delegated);
                w.field_u64("self_served", a.self_served);
                w.field_u64("remote_transfers", a.remote_transfers);
                w.end();
            }
            w.end();
        }
        w.end();
        w.key("tenants");
        w.begin_arr(true);
        for t in &self.tenants {
            w.begin_obj(false);
            w.field_u64("tenant", u64::from(t.tenant));
            w.field_u64("dispatched", t.dispatched);
            w.field_u64("misses", t.misses);
            Self::acc_json(&mut w, "latency_ns", &t.latency_ns);
            Self::acc_json(&mut w, "slack_ns", &t.slack_ns);
            w.end();
        }
        w.end();
        w.key("windows");
        w.begin_arr(true);
        for win in &self.windows {
            w.begin_obj(false);
            w.field_u64("start_ns", win.start_ns);
            w.field_u64("dispatched", win.dispatched);
            w.field_u64("misses", win.misses);
            w.field_u64("depth", win.depth);
            w.end();
        }
        w.end();
        w.end();
        w.finish()
    }

    /// Builds the snapshot header and merges per-shard cells into it.
    pub(crate) fn assemble(
        at_ns: u64,
        backend: &str,
        window_ns: u64,
        per_shard: Vec<(ShardTelemetry, u64, u64, Option<AdaptiveStats>)>,
    ) -> Self {
        let mut snap = TelemetrySnapshot {
            schema_version: SCHEMA_VERSION,
            at_ns,
            backend: backend.to_string(),
            window_ns,
            ..TelemetrySnapshot::default()
        };
        let mut tenants: Vec<TenantStats> = Vec::new();
        let mut windows: Vec<WindowStats> = Vec::new();
        for (shard, (cell, depth, shed, adaptive)) in per_shard.into_iter().enumerate() {
            snap.shards.push(ShardStats {
                shard,
                dispatched: cell.dispatched,
                misses: cell.misses,
                depth,
                latency_ns: cell.latency_ns,
                rank_error: cell.rank_error,
                rank_samples: cell.rank_samples,
                restarts: cell.restarts,
                requeued: cell.requeued,
                shed,
                adaptive,
            });
            for t in &cell.tenants {
                if t.dispatched == 0 {
                    continue;
                }
                let idx = t.tenant as usize;
                if tenants.len() <= idx {
                    tenants.resize_with(idx + 1, TenantStats::default);
                    for (i, slot) in tenants.iter_mut().enumerate() {
                        slot.tenant = i as u32;
                    }
                }
                tenants[idx].merge(t);
            }
            for w in cell.windows.windows() {
                match windows.iter_mut().find(|m| m.start_ns == w.start_ns) {
                    Some(m) => {
                        m.dispatched += w.dispatched;
                        m.misses += w.misses;
                        m.depth += w.depth;
                    }
                    None => windows.push(w),
                }
            }
        }
        tenants.retain(|t| t.dispatched > 0);
        windows.sort_by_key(|w| w.start_ns);
        snap.tenants = tenants;
        snap.windows = windows;
        snap
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::job::TenantId;

    fn job(tenant: u32, enqueued_ns: u64, deadline_ns: u64) -> Job {
        Job {
            id: 0,
            tenant: TenantId(tenant),
            deadline_ns,
            payload: 0,
            period_ns: 0,
            repeats_left: 0,
            enqueued_ns,
            enqueued_slot: 0,
        }
    }

    #[test]
    fn dispatches_land_in_tenant_and_window_buckets() {
        let mut t = ShardTelemetry::new(4, 100);
        t.record_dispatch(&job(1, 0, 500), 50, 50, false);
        t.record_dispatch(&job(1, 0, 90), 150, 150, true);
        t.record_dispatch(&job(3, 100, 1_000), 160, 60, false);
        assert_eq!(t.dispatched, 3);
        assert_eq!(t.misses, 1);
        assert_eq!(t.tenants[1].dispatched, 2);
        assert_eq!(t.tenants[1].misses, 1);
        assert_eq!(t.tenants[3].slack_ns.count(), 1);
        assert_eq!(t.tenants[0].dispatched, 0);
        let wins = t.windows.windows();
        assert_eq!(wins.len(), 2);
        assert_eq!(
            wins[0],
            WindowStats {
                start_ns: 0,
                dispatched: 1,
                misses: 0,
                depth: 0
            }
        );
        assert_eq!(wins[1].start_ns, 100);
        assert_eq!(wins[1].dispatched, 2);
        assert_eq!(wins[1].misses, 1);
    }

    #[test]
    fn window_ring_reuses_old_slots() {
        let mut r = WindowRing::new(10);
        r.record_dispatch(5, false);
        // WINDOW_COUNT windows later the same slot is reused for the new
        // index; the old window is gone.
        r.record_dispatch(5 + 10 * WINDOW_COUNT as u64, true);
        let wins = r.windows();
        assert_eq!(wins.len(), 1);
        assert_eq!(wins[0].start_ns, 10 * WINDOW_COUNT as u64);
        assert_eq!(wins[0].misses, 1);
    }

    #[test]
    fn rank_sample_scores_displacements() {
        let mut t = ShardTelemetry::new(1, 100);
        // Sorted batch: zero everywhere.
        t.record_rank_sample(&[(1, job(0, 0, 0)), (2, job(0, 0, 0)), (2, job(0, 0, 0))]);
        assert_eq!(t.rank_error.sum(), 0);
        assert_eq!(t.rank_error.count(), 3);
        // (5, 1, 3): the 5 jumped ahead of both later elements, the 1 and
        // 3 of nothing.
        t.record_rank_sample(&[(5, job(0, 0, 0)), (1, job(0, 0, 0)), (3, job(0, 0, 0))]);
        assert_eq!(t.rank_samples, 2);
        assert_eq!(t.rank_error.sum(), 2);
        assert_eq!(t.rank_error.max(), 2);
    }

    #[test]
    fn snapshot_merges_and_serializes() {
        let mut a = ShardTelemetry::new(4, 100);
        a.record_dispatch(&job(1, 0, 500), 10, 10, false);
        let mut b = ShardTelemetry::new(4, 100);
        b.record_dispatch(&job(1, 0, 90), 150, 150, true);
        b.record_dispatch(&job(2, 0, 500), 160, 160, false);
        b.record_rank_sample(&[(3, job(2, 0, 0)), (1, job(2, 0, 0))]);
        a.restarts = 1;
        a.requeued = 4;
        let snap = TelemetrySnapshot::assemble(
            1_000,
            "multiqueue",
            100,
            vec![(a, 7, 2, None), (b, 0, 0, None)],
        );
        assert_eq!(snap.schema_version, SCHEMA_VERSION);
        assert_eq!(snap.dispatched(), 3);
        assert_eq!(snap.misses(), 1);
        assert_eq!(snap.depth(), 7);
        assert_eq!(snap.restarts(), 1);
        assert_eq!(snap.requeued(), 4);
        assert_eq!(snap.shed(), 2);
        assert!(snap.rank_error_mean() > 0.0);
        // Tenant 1 merged across both shards; tenants 0 and 3 absent.
        assert_eq!(snap.tenants.len(), 2);
        assert_eq!(snap.tenants[0].tenant, 1);
        assert_eq!(snap.tenants[0].dispatched, 2);
        assert_eq!(snap.tenants[1].tenant, 2);
        // Windows merged by start.
        assert_eq!(snap.windows.len(), 2);
        assert_eq!(snap.windows[0].dispatched, 1);
        assert_eq!(snap.windows[1].dispatched, 2);
        let j = snap.to_json();
        assert!(j.starts_with("{\n  \"schema_version\": 3,"));
        assert!(j.contains("\"backend\": \"multiqueue\""));
        assert!(j.contains("\"tenant\": 1"));
        assert!(j.contains("\"rank_samples\": 1"));
        assert!(j.contains("\"windows\": ["));
    }
}
