//! Admission control: per-tenant quotas plus a global in-flight cap.
//!
//! Counters are optimistic `fetch_add` / check / undo so the admit path is
//! two uncontended RMWs in the common case and never takes a lock. Each
//! counter sits on its own cache line ([`CachePadded`]) — under hot-tenant
//! skew the hot tenant's counter would otherwise false-share with its
//! neighbours.

use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};

use funnelpq_util::CachePadded;

use crate::error::AdmitError;
use crate::job::Job;

/// Per-tenant quota + global capacity gate in front of the shard queues.
#[derive(Debug)]
pub(crate) struct Admission {
    capacity: usize,
    quota: usize,
    global: CachePadded<AtomicUsize>,
    tenants: Vec<CachePadded<AtomicUsize>>,
    admitted: AtomicU64,
    rejected_quota: AtomicU64,
    rejected_capacity: AtomicU64,
}

impl Admission {
    pub(crate) fn new(tenants: usize, quota: usize, capacity: usize) -> Self {
        Admission {
            capacity,
            quota,
            global: CachePadded::new(AtomicUsize::new(0)),
            tenants: (0..tenants)
                .map(|_| CachePadded::new(AtomicUsize::new(0)))
                .collect(),
            admitted: AtomicU64::new(0),
            rejected_quota: AtomicU64::new(0),
            rejected_capacity: AtomicU64::new(0),
        }
    }

    /// Tries to reserve one in-flight slot for `job`'s tenant. On refusal
    /// the counters are rolled back and the job rides home in the error.
    pub(crate) fn try_admit(&self, job: Job) -> Result<(), AdmitError> {
        let t = job.tenant.0 as usize;
        let Some(per_tenant) = self.tenants.get(t) else {
            return Err(AdmitError::TenantOutOfRange {
                tenant: job.tenant,
                tenants: self.tenants.len(),
                job,
            });
        };
        if per_tenant.fetch_add(1, Ordering::AcqRel) >= self.quota {
            per_tenant.fetch_sub(1, Ordering::AcqRel);
            self.rejected_quota.fetch_add(1, Ordering::Relaxed);
            return Err(AdmitError::TenantQuota {
                tenant: job.tenant,
                quota: self.quota,
                job,
            });
        }
        if self.global.fetch_add(1, Ordering::AcqRel) >= self.capacity {
            self.global.fetch_sub(1, Ordering::AcqRel);
            per_tenant.fetch_sub(1, Ordering::AcqRel);
            self.rejected_capacity.fetch_add(1, Ordering::Relaxed);
            return Err(AdmitError::Capacity {
                capacity: self.capacity,
                job,
            });
        }
        self.admitted.fetch_add(1, Ordering::Relaxed);
        Ok(())
    }

    /// Releases the slot reserved by a successful [`Self::try_admit`]. Called
    /// once per job at final dispatch (periodic jobs hold their slot across
    /// re-arms: a timer that re-files itself never left the system).
    pub(crate) fn release(&self, tenant: usize) {
        self.tenants[tenant].fetch_sub(1, Ordering::AcqRel);
        self.global.fetch_sub(1, Ordering::AcqRel);
    }

    pub(crate) fn in_flight(&self) -> usize {
        self.global.load(Ordering::Acquire)
    }

    #[cfg(test)]
    pub(crate) fn tenant_in_flight(&self, tenant: usize) -> usize {
        self.tenants[tenant].load(Ordering::Acquire)
    }

    pub(crate) fn admitted(&self) -> u64 {
        self.admitted.load(Ordering::Relaxed)
    }

    pub(crate) fn rejected_quota(&self) -> u64 {
        self.rejected_quota.load(Ordering::Relaxed)
    }

    pub(crate) fn rejected_capacity(&self) -> u64 {
        self.rejected_capacity.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::job::TenantId;

    fn job(tenant: u32) -> Job {
        Job {
            id: 0,
            tenant: TenantId(tenant),
            deadline_ns: 0,
            payload: 0,
            period_ns: 0,
            repeats_left: 0,
            enqueued_ns: 0,
            enqueued_slot: 0,
        }
    }

    #[test]
    fn quota_is_enforced_per_tenant() {
        let a = Admission::new(2, 2, 100);
        assert!(a.try_admit(job(0)).is_ok());
        assert!(a.try_admit(job(0)).is_ok());
        assert!(matches!(
            a.try_admit(job(0)),
            Err(AdmitError::TenantQuota { quota: 2, .. })
        ));
        // A different tenant is unaffected.
        assert!(a.try_admit(job(1)).is_ok());
        assert_eq!(a.admitted(), 3);
        assert_eq!(a.rejected_quota(), 1);
        // Releasing frees the slot again.
        a.release(0);
        assert!(a.try_admit(job(0)).is_ok());
    }

    #[test]
    fn global_capacity_caps_the_sum() {
        let a = Admission::new(4, 10, 3);
        for t in 0..3 {
            assert!(a.try_admit(job(t)).is_ok());
        }
        assert!(matches!(
            a.try_admit(job(3)),
            Err(AdmitError::Capacity { capacity: 3, .. })
        ));
        assert_eq!(a.in_flight(), 3);
        assert_eq!(a.rejected_capacity(), 1);
        // The failed admit must have rolled back tenant 3's counter too.
        assert_eq!(a.tenant_in_flight(3), 0);
    }

    #[test]
    fn unknown_tenant_is_refused_with_the_job() {
        let a = Admission::new(2, 2, 2);
        let e = a.try_admit(job(7)).unwrap_err();
        assert!(matches!(e, AdmitError::TenantOutOfRange { tenants: 2, .. }));
        assert_eq!(e.into_job().tenant, TenantId(7));
        assert_eq!(a.in_flight(), 0);
    }

    #[test]
    fn concurrent_admits_never_exceed_capacity() {
        let a = std::sync::Arc::new(Admission::new(8, 64, 100));
        let peak = std::sync::Arc::new(AtomicUsize::new(0));
        let handles: Vec<_> = (0..8)
            .map(|t| {
                let a = std::sync::Arc::clone(&a);
                let peak = std::sync::Arc::clone(&peak);
                std::thread::spawn(move || {
                    let mut admitted = 0u64;
                    for _ in 0..500 {
                        if a.try_admit(job(t)).is_ok() {
                            peak.fetch_max(a.in_flight(), Ordering::Relaxed);
                            admitted += 1;
                            a.release(t as usize);
                        }
                    }
                    admitted
                })
            })
            .collect();
        let total: u64 = handles.into_iter().map(|h| h.join().unwrap()).sum();
        assert_eq!(a.admitted(), total);
        assert_eq!(a.in_flight(), 0, "every admit was released");
        // fetch_add-then-check admits at most capacity concurrently; the
        // observed peak can legitimately reach it but never exceed it.
        assert!(peak.load(Ordering::Relaxed) <= 100);
    }
}
