//! The job model: what tenants submit and shards dispatch.

/// A logical tenant of the scheduler. Tenants are dense small integers
/// (`0..ServerConfig::tenants`): admission tracks one in-flight counter per
/// tenant, and the router hashes or pins tenants to shards.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct TenantId(pub u32);

impl std::fmt::Display for TenantId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "tenant{}", self.0)
    }
}

/// Unique id the scheduler assigns to every submitted job (including ones
/// that end up rejected), monotonically increasing per scheduler.
pub type JobId = u64;

/// When a job is due: at an absolute instant, or relative to its own
/// admission.
///
/// [`Deadline::In`] is resolved against the job's enqueue stamp *inside*
/// `submit`, so the promised slack survives intact no matter how long the
/// caller was preempted between building the spec and the submit landing —
/// with [`Deadline::At`] a stall in that window silently eats the slack.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Deadline {
    /// Absolute: nanoseconds since the scheduler's epoch.
    At(u64),
    /// Relative: this many nanoseconds after the job is admitted.
    In(u64),
}

/// What a client asks the scheduler to run: the caller-facing subset of a
/// [`Job`], before the scheduler stamps identity and admission metadata.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct JobSpec {
    /// Which tenant the job belongs to (quota accounting, routing).
    pub tenant: TenantId,
    /// When the job is due.
    pub deadline: Deadline,
    /// Opaque payload handed back at dispatch.
    pub payload: u64,
    /// Re-arm period for timer-style jobs: 0 means one-shot, otherwise the
    /// job re-files itself `repeats` more times via the queue's fused
    /// `replace_min`, each deadline `period_ns` after the previous one
    /// (fixed-rate) or after the late dispatch (fixed-delay), whichever is
    /// later.
    pub period_ns: u64,
    /// How many additional firings a periodic job gets after the first.
    pub repeats: u32,
}

impl JobSpec {
    /// A one-shot job.
    pub fn once(tenant: TenantId, deadline: Deadline, payload: u64) -> Self {
        JobSpec {
            tenant,
            deadline,
            payload,
            period_ns: 0,
            repeats: 0,
        }
    }

    /// A periodic job: first due at `deadline`, then `repeats` further
    /// firings spaced `period_ns` apart.
    pub fn periodic(
        tenant: TenantId,
        deadline: Deadline,
        payload: u64,
        period_ns: u64,
        repeats: u32,
    ) -> Self {
        JobSpec {
            tenant,
            deadline,
            payload,
            period_ns,
            repeats,
        }
    }
}

/// A scheduled unit of work as it lives inside a shard's priority queue.
///
/// `Copy` on purpose: the queue error types ([`funnelpq::PqError`],
/// [`funnelpq::PqBatchError`]) carry rejected items back by value, so a
/// rejected job — id, tenant, payload and all — survives the whole error
/// path and can be resubmitted.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Job {
    /// Scheduler-assigned id.
    pub id: JobId,
    /// Owning tenant.
    pub tenant: TenantId,
    /// Absolute deadline, nanoseconds since the scheduler's epoch.
    pub deadline_ns: u64,
    /// Opaque payload.
    pub payload: u64,
    /// Re-arm period (0 = one-shot).
    pub period_ns: u64,
    /// Remaining re-arms for a periodic job.
    pub repeats_left: u32,
    /// Wall-clock enqueue stamp (nanoseconds since epoch), set at
    /// admission; enqueue→dispatch latency is measured from it.
    pub enqueued_ns: u64,
    /// The owning shard's dispatch count at admission — the job's position
    /// on the shard's *virtual* service clock, against which deadline
    /// misses are evaluated (see `docs/SERVER.md`).
    pub enqueued_slot: u64,
}

/// SplitMix64 step over the tenant id: the router's default shard hash.
/// Kept here (not in the router) so tests can predict placements.
pub(crate) fn tenant_hash(t: TenantId) -> u64 {
    let mut state = t.0 as u64;
    funnelpq_util::splitmix64(&mut state)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spec_constructors() {
        let s = JobSpec::once(TenantId(3), Deadline::At(1_000), 42);
        assert_eq!(s.period_ns, 0);
        assert_eq!(s.repeats, 0);
        let p = JobSpec::periodic(TenantId(3), Deadline::In(1_000), 42, 500, 4);
        assert_eq!(p.period_ns, 500);
        assert_eq!(p.repeats, 4);
        assert_eq!(p.deadline, Deadline::In(1_000));
    }

    #[test]
    fn tenant_hash_spreads() {
        // Not a statistical test — just that nearby tenants do not all
        // collapse onto one shard for small shard counts.
        let shards = 4;
        let mut seen = std::collections::HashSet::new();
        for t in 0..16 {
            seen.insert(tenant_hash(TenantId(t)) as usize % shards);
        }
        assert!(seen.len() > 1, "all 16 tenants hashed to one shard");
    }

    #[test]
    fn tenant_display() {
        assert_eq!(TenantId(7).to_string(), "tenant7");
    }
}
