//! Native fault injection for the running scheduler, mirroring the
//! simulator's `funnelpq_sim::fault` API: a [`FaultPlan`] is a seeded,
//! declarative description of adversity, attached before [`start`] and
//! fired deterministically by position in the execution — the N-th
//! dispatch of a shard, the N-th submitted job — so a failing chaos run
//! replays exactly.
//!
//! Three fault shapes cover the server's failure modes:
//!
//! * [`ServerFault::DispatcherPanic`] — the shard's dispatcher panics
//!   between draining a job and dispatching it, the worst spot: the job
//!   is off the queue but unaccounted. Exercises the supervisor's
//!   survivor-requeue + restart path (see [`crate::SuperviseConfig`]).
//! * [`ServerFault::DispatcherStall`] — the dispatcher freezes for a
//!   wall-clock interval (a GC pause, a preempted core). Backlog builds;
//!   overload control must react via the depth signal while the
//!   dispatch-rate estimate is stale.
//! * [`ServerFault::AdmissionBurst`] — at the N-th submission, the
//!   submitting client injects a burst of extra jobs across tenants
//!   drawn from the plan's own seeded RNG stream (a thundering herd).
//!
//! # Cost model
//!
//! Like the simulator's fault layer, the hooks follow the cold-split
//! pattern: with no plan attached (the default) the dispatch and submit
//! paths each pay one `Option` presence test; the matching machinery
//! lives behind `#[cold]` functions.
//!
//! [`start`]: crate::Scheduler::start

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Mutex;

use funnelpq_util::XorShift64Star;

use crate::job::TenantId;

/// One declarative fault in a [`FaultPlan`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ServerFault {
    /// Panic shard `shard`'s dispatcher immediately before it dispatches
    /// its `at_dispatch`-th job (0-based on the shard's dispatch counter).
    /// Fires once.
    DispatcherPanic {
        /// The shard whose dispatcher panics.
        shard: usize,
        /// The dispatch count at which it fires.
        at_dispatch: u64,
    },
    /// Stall shard `shard`'s dispatcher for `stall_ns` of wall clock
    /// immediately before its `at_dispatch`-th dispatch. Fires once.
    DispatcherStall {
        /// The shard whose dispatcher stalls.
        shard: usize,
        /// The dispatch count at which it fires.
        at_dispatch: u64,
        /// How long the dispatcher freezes, in nanoseconds.
        stall_ns: u64,
    },
    /// When the `at_submit`-th job (0-based on the scheduler's id
    /// counter) is submitted, the submitting client immediately submits
    /// `jobs` extra one-shot jobs with deadline `Deadline::In
    /// (deadline_in_ns)`, each for a tenant drawn from the plan's seeded
    /// RNG. Refusals (quota, capacity, shed) are counted normally.
    /// Fires once.
    AdmissionBurst {
        /// The submission count at which the burst fires.
        at_submit: u64,
        /// How many extra jobs the burst injects.
        jobs: u32,
        /// Relative deadline given to every burst job.
        deadline_in_ns: u64,
    },
}

/// A seeded, declarative set of server faults. Attach one via
/// [`crate::ServerConfig::fault_plan`]; an empty plan perturbs nothing.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FaultPlan {
    seed: u64,
    faults: Vec<ServerFault>,
}

impl FaultPlan {
    /// An empty plan whose RNG stream (burst tenant draws) is seeded with
    /// `seed`.
    pub fn new(seed: u64) -> Self {
        FaultPlan {
            seed,
            faults: Vec::new(),
        }
    }

    /// Adds `fault` to the plan (builder style).
    pub fn with(mut self, fault: ServerFault) -> Self {
        self.faults.push(fault);
        self
    }

    /// Shorthand for [`ServerFault::DispatcherPanic`].
    pub fn dispatcher_panic(self, shard: usize, at_dispatch: u64) -> Self {
        self.with(ServerFault::DispatcherPanic { shard, at_dispatch })
    }

    /// Shorthand for [`ServerFault::DispatcherStall`].
    pub fn dispatcher_stall(self, shard: usize, at_dispatch: u64, stall_ns: u64) -> Self {
        self.with(ServerFault::DispatcherStall {
            shard,
            at_dispatch,
            stall_ns,
        })
    }

    /// Shorthand for [`ServerFault::AdmissionBurst`].
    pub fn admission_burst(self, at_submit: u64, jobs: u32, deadline_in_ns: u64) -> Self {
        self.with(ServerFault::AdmissionBurst {
            at_submit,
            jobs,
            deadline_in_ns,
        })
    }

    /// The declared faults.
    pub fn faults(&self) -> &[ServerFault] {
        &self.faults
    }

    /// `true` when the plan declares nothing.
    pub fn is_empty(&self) -> bool {
        self.faults.is_empty()
    }

    /// The largest shard index any dispatcher fault targets (config
    /// validation refuses plans aimed at shards that do not exist).
    pub(crate) fn max_shard(&self) -> Option<usize> {
        self.faults
            .iter()
            .filter_map(|f| match f {
                ServerFault::DispatcherPanic { shard, .. }
                | ServerFault::DispatcherStall { shard, .. } => Some(*shard),
                ServerFault::AdmissionBurst { .. } => None,
            })
            .max()
    }
}

/// What a fired [`ServerFault::AdmissionBurst`] asks the submitting
/// client to inject.
pub(crate) struct Burst {
    pub(crate) jobs: u32,
    pub(crate) deadline_in_ns: u64,
}

/// The runtime form of a plan: each fault paired with a fire-once flag,
/// plus the seeded RNG stream for burst tenant draws.
pub(crate) struct ArmedFaults {
    faults: Vec<(ServerFault, AtomicBool)>,
    rng: Mutex<XorShift64Star>,
}

impl ArmedFaults {
    pub(crate) fn new(plan: &FaultPlan) -> Self {
        ArmedFaults {
            faults: plan
                .faults
                .iter()
                .map(|f| (*f, AtomicBool::new(false)))
                .collect(),
            rng: Mutex::new(XorShift64Star::new(plan.seed | 1)),
        }
    }

    /// Dispatcher-side hook, called with the shard's current dispatch
    /// count immediately before each dispatch. Returns a stall duration
    /// to sleep, or panics for a [`ServerFault::DispatcherPanic`].
    #[cold]
    #[inline(never)]
    pub(crate) fn at_dispatch(&self, shard: usize, n: u64) -> Option<u64> {
        let mut stall = None;
        for (fault, fired) in &self.faults {
            match *fault {
                ServerFault::DispatcherPanic {
                    shard: s,
                    at_dispatch,
                } if s == shard && n >= at_dispatch && !fired.swap(true, Ordering::AcqRel) => {
                    panic!("injected: dispatcher panic at dispatch {n} on shard {shard}");
                }
                ServerFault::DispatcherStall {
                    shard: s,
                    at_dispatch,
                    stall_ns,
                } if s == shard && n >= at_dispatch && !fired.swap(true, Ordering::AcqRel) => {
                    stall = Some(stall_ns.max(stall.unwrap_or(0)));
                }
                _ => {}
            }
        }
        stall
    }

    /// Submit-side hook, called with each job's assigned id. Returns the
    /// burst the submitting client must inject, if one fires here.
    #[cold]
    #[inline(never)]
    pub(crate) fn at_submit(&self, id: u64) -> Option<Burst> {
        for (fault, fired) in &self.faults {
            if let ServerFault::AdmissionBurst {
                at_submit,
                jobs,
                deadline_in_ns,
            } = *fault
            {
                if id >= at_submit && !fired.swap(true, Ordering::AcqRel) {
                    return Some(Burst {
                        jobs,
                        deadline_in_ns,
                    });
                }
            }
        }
        None
    }

    /// Draws a burst tenant from the plan's own RNG stream.
    pub(crate) fn draw_tenant(&self, tenants: usize) -> TenantId {
        let mut rng = self.rng.lock().unwrap();
        TenantId(rng.below(tenants as u64) as u32)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_collects_faults_and_max_shard() {
        let p = FaultPlan::new(7)
            .dispatcher_panic(1, 40)
            .dispatcher_stall(3, 10, 5_000_000)
            .admission_burst(100, 64, 1_000_000);
        assert_eq!(p.faults().len(), 3);
        assert!(!p.is_empty());
        assert_eq!(p.max_shard(), Some(3));
        assert_eq!(FaultPlan::new(0).max_shard(), None);
    }

    #[test]
    fn panic_fault_fires_once_at_its_dispatch() {
        let armed = ArmedFaults::new(&FaultPlan::new(1).dispatcher_panic(0, 5));
        assert_eq!(armed.at_dispatch(0, 4), None, "not yet");
        assert_eq!(armed.at_dispatch(1, 5), None, "wrong shard");
        let caught =
            std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| armed.at_dispatch(0, 5)));
        assert!(caught.is_err(), "panic fault must panic");
        // Consumed: the restarted dispatcher sails past the trigger.
        assert_eq!(armed.at_dispatch(0, 5), None);
        assert_eq!(armed.at_dispatch(0, 6), None);
    }

    #[test]
    fn stall_and_burst_fire_once() {
        let armed = ArmedFaults::new(
            &FaultPlan::new(2)
                .dispatcher_stall(0, 3, 1_000)
                .admission_burst(10, 4, 500),
        );
        assert_eq!(armed.at_dispatch(0, 2), None);
        assert_eq!(armed.at_dispatch(0, 3), Some(1_000));
        assert_eq!(armed.at_dispatch(0, 4), None, "consumed");
        assert!(armed.at_submit(9).is_none());
        let burst = armed.at_submit(11).expect(">= trigger still fires");
        assert_eq!(burst.jobs, 4);
        assert_eq!(burst.deadline_in_ns, 500);
        assert!(armed.at_submit(12).is_none(), "consumed");
        let t = armed.draw_tenant(4);
        assert!(t.0 < 4);
    }
}
