//! Dispatcher supervision: restart policy and the typed per-shard stop
//! outcome.
//!
//! Every shard's dispatcher loop runs under a supervisor (one
//! `catch_unwind` ring around each dispatch episode). When the loop
//! panics — an injected [`crate::FaultPlan`] fault in tests, a genuine bug
//! in production — the supervisor:
//!
//! 1. collects the *survivors*: jobs the episode had drained from the
//!    queue but not yet dispatched (they would otherwise be lost with the
//!    unwound stack);
//! 2. requeues them — back into the shard's own queue when a restart is
//!    coming, or through the [`crate::Router`] into a healthy shard when
//!    this shard is giving up;
//! 3. restarts the loop after a bounded exponential backoff, up to
//!    [`SuperviseConfig::max_restarts`] times.
//!
//! A shard that exhausts its restart budget marks itself unhealthy (the
//! scheduler routes around it), drains its entire queue into healthy
//! shards, and exits with [`StopOutcome::GaveUp`]. Either way
//! [`crate::Scheduler::stop`] *returns* — it never re-raises a dispatcher
//! panic — and reports one [`StopReport`] per shard.
//!
//! Restarts and requeued jobs are surfaced three ways: the obs layer
//! (`CounterEvent::ShardRestart` / `CounterEvent::JobsRequeued`), the
//! live telemetry snapshot, and the final [`crate::ServerReport`].

/// Restart policy for a shard's supervised dispatcher.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SuperviseConfig {
    /// How many times a shard's dispatcher may be restarted after a panic
    /// before the shard gives up and fails over. `0` means any panic is
    /// terminal for the shard (its jobs still fail over to healthy
    /// shards — nothing is silently lost).
    pub max_restarts: u32,
    /// Backoff before the first restart, in nanoseconds. Each further
    /// restart doubles it.
    pub backoff_base_ns: u64,
    /// Ceiling on the restart backoff, in nanoseconds.
    pub backoff_max_ns: u64,
}

impl Default for SuperviseConfig {
    fn default() -> Self {
        SuperviseConfig {
            max_restarts: 8,
            backoff_base_ns: 100_000,    // 100 µs
            backoff_max_ns: 100_000_000, // 100 ms
        }
    }
}

impl SuperviseConfig {
    /// The backoff before restart number `restart` (1-based): bounded
    /// exponential, `base << (restart - 1)` capped at `backoff_max_ns`.
    pub(crate) fn backoff_ns(&self, restart: u32) -> u64 {
        let shift = restart.saturating_sub(1).min(20);
        self.backoff_base_ns
            .saturating_mul(1u64 << shift)
            .min(self.backoff_max_ns)
    }
}

/// How one shard's dispatcher ended, as reported by [`crate::Scheduler::stop`].
#[non_exhaustive]
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StopOutcome {
    /// The dispatcher ran to completion without a single panic.
    Clean,
    /// The dispatcher panicked at least once but its supervisor recovered
    /// it within the restart budget; the shard finished its work.
    Recovered {
        /// How many times the dispatcher was restarted.
        restarts: u32,
        /// Jobs requeued after panics (all back into this shard).
        requeued: u64,
        /// The last panic's message.
        last_panic: String,
    },
    /// The dispatcher exhausted [`SuperviseConfig::max_restarts`]; the
    /// shard drained its queue into healthy shards and went dark.
    GaveUp {
        /// Restarts performed before giving up.
        restarts: u32,
        /// Jobs handed to healthy shards (plus any requeued on earlier
        /// restarts).
        requeued: u64,
        /// Jobs that could not be placed anywhere (no healthy shard
        /// left). Their admission slots were released and they are
        /// reported lost — the chaos harness asserts this is zero
        /// whenever a healthy shard exists.
        lost: u64,
        /// The last panic's message.
        last_panic: String,
    },
    /// The supervisor thread itself was lost (its `join` failed) — the
    /// shard's report is gone. This indicates a bug in the supervisor,
    /// not in a dispatched job; it is reported, never re-raised.
    SupervisorLost {
        /// The join error's panic message.
        message: String,
    },
}

impl StopOutcome {
    /// `true` for [`StopOutcome::Clean`].
    pub fn is_clean(&self) -> bool {
        matches!(self, StopOutcome::Clean)
    }

    /// Jobs reported lost by this shard (nonzero only for
    /// [`StopOutcome::GaveUp`] with no healthy shard left).
    pub fn lost(&self) -> u64 {
        match self {
            StopOutcome::GaveUp { lost, .. } => *lost,
            _ => 0,
        }
    }
}

/// One shard's typed stop entry: [`crate::Scheduler::stop`] returns one
/// per shard instead of propagating dispatcher panics.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StopReport {
    /// Which shard.
    pub shard: usize,
    /// How its dispatcher ended.
    pub outcome: StopOutcome,
}

/// Renders a caught panic payload as a message (the common `&str` /
/// `String` payloads verbatim, anything else a placeholder).
pub(crate) fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn backoff_is_bounded_exponential() {
        let s = SuperviseConfig {
            max_restarts: 10,
            backoff_base_ns: 100,
            backoff_max_ns: 1_000,
        };
        assert_eq!(s.backoff_ns(1), 100);
        assert_eq!(s.backoff_ns(2), 200);
        assert_eq!(s.backoff_ns(3), 400);
        assert_eq!(s.backoff_ns(4), 800);
        assert_eq!(s.backoff_ns(5), 1_000, "capped");
        assert_eq!(s.backoff_ns(60), 1_000, "shift saturates, no overflow");
    }

    #[test]
    fn outcome_classifies_lost_jobs() {
        assert!(StopOutcome::Clean.is_clean());
        assert_eq!(StopOutcome::Clean.lost(), 0);
        let gave_up = StopOutcome::GaveUp {
            restarts: 2,
            requeued: 5,
            lost: 3,
            last_panic: "boom".into(),
        };
        assert!(!gave_up.is_clean());
        assert_eq!(gave_up.lost(), 3);
        let rec = StopOutcome::Recovered {
            restarts: 1,
            requeued: 4,
            last_panic: "boom".into(),
        };
        assert_eq!(rec.lost(), 0);
    }

    #[test]
    fn panic_messages_round_trip() {
        let b: Box<dyn std::any::Any + Send> = Box::new("static str");
        assert_eq!(panic_message(b.as_ref()), "static str");
        let b: Box<dyn std::any::Any + Send> = Box::new(String::from("owned"));
        assert_eq!(panic_message(b.as_ref()), "owned");
        let b: Box<dyn std::any::Any + Send> = Box::new(42u32);
        assert_eq!(panic_message(b.as_ref()), "non-string panic payload");
    }
}
