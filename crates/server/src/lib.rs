//! # funnelpq-server
//!
//! A sharded job-scheduler/timer service over the `funnelpq` priority
//! queues — the serving layer the paper's algorithms exist to power: an OS
//! scheduler's run queues, a timer wheel, an event-driven job dispatcher.
//!
//! The shape: tenants submit [`JobSpec`]s (one-shot or periodic) with
//! absolute deadlines; a [`Router`] hashes (or pins) each tenant onto one
//! of N shards; admission control enforces per-tenant quotas and a global
//! in-flight capacity, refusing with typed [`ServerError`]s that carry the
//! job back; each shard runs one dispatcher thread draining its queue with
//! `delete_min_batch` and re-arming periodic jobs through the fused
//! `replace_min` — every shard can be backed by any [`funnelpq::PqConfig`]
//! backend, strict (`SingleLock`, `FunnelTree`, …) or relaxed
//! (`MultiQueue`).
//!
//! Deadline misses are evaluated on a per-shard *virtual service clock*
//! (dispatch counts, paced at [`ServerConfig::service_ns`] per job) so the
//! miss rate measures queueing and ordering error — the thing the backend
//! controls — rather than host scheduling noise. Wall-clock
//! enqueue→dispatch latency is accounted separately into log₂ histograms
//! ([`funnelpq_util::Acc`]: p50/p99/p999). See `docs/SERVER.md`.
//!
//! The running server is observable live: [`Scheduler::telemetry`] takes
//! a [`TelemetrySnapshot`] — per-tenant and per-shard latency/slack
//! histograms, a windowed throughput/depth time-series, and a sampled
//! rank-error estimate for relaxed backends — serializable as versioned
//! JSON (see `docs/OBSERVABILITY.md` and the `pqstat` example).
//!
//! The serving layer is resilient by construction: every dispatcher runs
//! under a supervisor that catches panics, requeues the jobs the dead
//! incarnation had in hand, and restarts with bounded exponential backoff
//! — a shard that exhausts its budget fails its queue over to healthy
//! peers, and [`Scheduler::stop`] reports a typed [`StopOutcome`] per
//! shard instead of re-raising. Overload control ([`OverloadConfig`])
//! sheds jobs whose deadlines are unmeetable given backlog × measured
//! dispatch rate, handing back [`AdmitError::Retry`] with a drain-time
//! hint that [`RetryPolicy`] turns into jittered client backoff. A seeded
//! [`FaultPlan`] injects dispatcher panics, stalls, and admission bursts
//! natively for chaos testing (see `docs/FAULTS.md`).
//!
//! ## Example
//!
//! ```
//! use funnelpq_server::{Deadline, JobSpec, Scheduler, ServerConfig, TenantId};
//!
//! let cfg = ServerConfig { service_ns: 1, ..ServerConfig::default() };
//! let s = Scheduler::new(cfg).unwrap();
//! for t in 0..4 {
//!     let spec = JobSpec::once(TenantId(t), Deadline::In(1_000_000), u64::from(t));
//!     s.submit(0, spec).unwrap();
//! }
//! s.start();
//! while s.in_flight() > 0 {
//!     std::thread::yield_now();
//! }
//! let report = s.stop();
//! assert_eq!(report.completed, 4);
//! assert_eq!(report.miss_rate(), 0.0);
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

mod admission;
mod error;
mod fault;
mod job;
mod retry;
mod router;
mod scheduler;
mod shard;
mod supervise;
pub mod telemetry;

pub use error::{AdmitError, ServerError};
pub use fault::{FaultPlan, ServerFault};
pub use job::{Deadline, Job, JobId, JobSpec, TenantId};
pub use retry::RetryPolicy;
pub use router::Router;
pub use scheduler::{OverloadConfig, Scheduler, ServerConfig, ServerReport};
pub use shard::{DispatchRecord, ShardReport};
pub use supervise::{StopOutcome, StopReport, SuperviseConfig};
pub use telemetry::{ShardStats, TelemetrySnapshot, TenantStats, WindowStats};
