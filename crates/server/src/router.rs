//! Tenant → shard routing: hash by default, explicit affinity pins on top.

use crate::error::ServerError;
use crate::job::{tenant_hash, TenantId};

/// Routes tenants onto shards. The default placement hashes the tenant id
/// (SplitMix64, so consecutive small tenant ids still spread), and
/// individual tenants can be pinned to a shard — e.g. to co-locate a
/// latency-critical tenant with an underloaded shard, or to keep a tenant's
/// periodic timers on one dispatcher for strict intra-tenant ordering.
#[derive(Debug, Clone)]
pub struct Router {
    shards: usize,
    affinity: Vec<Option<usize>>,
}

impl Router {
    /// A hash router over `shards` shards for tenants `0..tenants`.
    pub fn new(shards: usize, tenants: usize) -> Self {
        assert!(shards >= 1, "router needs at least one shard");
        Router {
            shards,
            affinity: vec![None; tenants],
        }
    }

    /// Pins `tenant` to `shard`, overriding the hash placement.
    ///
    /// A shard index the router does not have is refused as
    /// [`ServerError::InvalidShard`] — typed, like every other server
    /// refusal, so a bad affinity entry cannot take the process down.
    /// Out-of-range tenants are ignored (they are refused by admission
    /// before routing is ever consulted).
    pub fn pin(&mut self, tenant: TenantId, shard: usize) -> Result<(), ServerError> {
        if shard >= self.shards {
            return Err(ServerError::InvalidShard {
                shard,
                shards: self.shards,
            });
        }
        if let Some(slot) = self.affinity.get_mut(tenant.0 as usize) {
            *slot = Some(shard);
        }
        Ok(())
    }

    /// The shard that serves `tenant`.
    pub fn route(&self, tenant: TenantId) -> usize {
        if let Some(Some(pinned)) = self.affinity.get(tenant.0 as usize) {
            return *pinned;
        }
        (tenant_hash(tenant) % self.shards as u64) as usize
    }

    /// Number of shards this router spreads over.
    pub fn shards(&self) -> usize {
        self.shards
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn routing_is_stable_and_in_range() {
        let r = Router::new(4, 32);
        for t in 0..32 {
            let s = r.route(TenantId(t));
            assert!(s < 4);
            assert_eq!(s, r.route(TenantId(t)), "routing must be stable");
        }
    }

    #[test]
    fn pin_overrides_the_hash() {
        let mut r = Router::new(4, 8);
        let t = TenantId(5);
        let hashed = r.route(t);
        let target = (hashed + 1) % 4;
        r.pin(t, target).unwrap();
        assert_eq!(r.route(t), target);
        // Other tenants keep their hash placement.
        assert_eq!(r.route(TenantId(6)), Router::new(4, 8).route(TenantId(6)));
    }

    #[test]
    fn pin_rejects_bad_shard_with_typed_error() {
        let mut r = Router::new(2, 4);
        let err = r.pin(TenantId(0), 2).unwrap_err();
        assert_eq!(
            err,
            ServerError::InvalidShard {
                shard: 2,
                shards: 2
            }
        );
        // The failed pin left no affinity behind.
        assert_eq!(r.route(TenantId(0)), Router::new(2, 4).route(TenantId(0)));
    }
}
